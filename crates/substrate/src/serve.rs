//! Zero-dependency multi-tenant simulation service (DESIGN.md §3.7).
//!
//! A minimal HTTP/1.1 server over [`std::net::TcpListener`], modelled on
//! the pull-based collector stacks the paper's methodology uses
//! out-of-band (Cray PM → LDMS → OMNI): scrapers poll the process instead
//! of the process pushing samples. On top of the original read-only
//! observability endpoints, the server runs a bounded **job service**:
//!
//! * `POST /jobs` — submit a JSON job spec. The spec is validated by the
//!   installed [`JobHandler`] (the binary wires one that checks specs
//!   against the benchmark recipes), assigned an id and a dedicated
//!   [`trace::LocalSession`], and queued. At most `max_sessions` jobs run
//!   concurrently, each on its own thread with the session bound to it,
//!   so concurrent jobs produce disjoint traces. Replies `201` with a
//!   `Location` header and the job's status document.
//! * `GET /jobs` — registry listing: per-job id/state/workload plus
//!   running/queued counts.
//! * `GET /jobs/<id>` — full status: spec, state, timings, trace
//!   admission stats, result or error.
//! * `GET /jobs/<id>/trace?after=SEQ&limit=N` — **cursor-streamed**
//!   trace: a bounded jsonl chunk of events with `seq >= SEQ`, plus
//!   `X-Vpp-Next-Cursor` (pass back as `after`), `X-Vpp-More` (events
//!   beyond the chunk were already visible) and `X-Vpp-Job-State`
//!   headers. A follower polls until the state is terminal and `more` is
//!   false; each event is delivered exactly once across chunks, and no
//!   poll re-serialises the whole log.
//! * `GET /jobs/<id>/metrics` — the job session's own Prometheus
//!   exposition (counters, gauges, span summaries, admission stats).
//! * `DELETE /jobs/<id>` — cancel: a queued job is removed from the
//!   queue and terminal immediately; a running job gets its cooperative
//!   [`CancelToken`] set (`202`, the handler stops at its next check);
//!   an already-terminal job is a `409`.
//!
//! The service manages its own resource lifetimes:
//!
//! * **Keep-alive** — connections are persistent per RFC 9112 (the
//!   HTTP/1.1 default): one socket serves up to [`MAX_CONN_REQUESTS`]
//!   requests, bytes read past one body carry over as the next request's
//!   prefix (pipelining works), and the server closes when the client
//!   sends `Connection: close`, after a protocol error (`431`/`413`/
//!   `408` drain-and-close), or at the request cap. A connection that
//!   goes idle mid-request is answered `408`; one that never starts a
//!   request is closed quietly.
//! * **TTL eviction** — terminal jobs older than [`ServeConfig::job_ttl`]
//!   (default 15 min; `None` keeps forever) are swept out of the
//!   registry, freeing their session ring buffers. Evicted ids answer
//!   `410 Gone` (not `404`), and evictions count in
//!   `vpp_serve_jobs_evicted_total`.
//! * **Backpressure** — the submission queue is bounded at
//!   [`ServeConfig::max_queue`] (default 32); a full queue answers `429`
//!   with `Retry-After` instead of growing without bound.
//!
//! Every 4xx/5xx answers one structured JSON shape,
//! `{"error": <reason phrase>, "detail": <what went wrong>}`, so clients
//! branch on a stable member instead of scraping prose.
//!
//! The original endpoints remain: `GET /metrics` (process exposition —
//! global session plus `vpp_up` / `vpp_serve_*` self-series), `GET
//! /healthz` (JSON run state) and `GET /trace?format=json|jsonl|csv`
//! (whole-log snapshot of the *global* session). With `federate` peers
//! configured, `/metrics` additionally scrapes each peer's `/metrics`
//! and merges the expositions into one document, tagging every peer
//! sample with a `peer="..."` label and reporting reachability as
//! `vpp_federate_peer_up`.
//!
//! The service also watches itself:
//!
//! * **Per-route telemetry** — every handled request lands in a
//!   [`trace::Histogram`] keyed by normalised route
//!   (`vpp_serve_request_seconds{route=...}`) plus a per-status counter
//!   (`vpp_serve_response_status_total{route=...,status=...}`), both
//!   rendered into `/metrics`. Routes are normalised to their patterns
//!   (`/jobs/<id>/trace`, not each id) so cardinality stays fixed.
//! * `GET /logs?after=SEQ&limit=N&level=warn` — cursor-streamed jsonl
//!   over the process-wide structured [`trace` journal](trace::logs_after)
//!   (same exactly-once admission-ticket scheme as `/jobs/<id>/trace`);
//!   the service emits warn/error records at its decision points (`429`
//!   backpressure, TTL eviction, `408` stalls, job failure/cancel,
//!   federation peer-down).
//!
//! Every `GET` route also answers `HEAD` with identical headers
//! (including `Content-Length`) and no body, per RFC 9110 §9.3.2.
//!
//! Design constraints, in order: **never perturb a run** (reads are
//! non-draining snapshots or bounded cursor chunks; the accept loop is a
//! fixed two-worker scoped pool), **shut down leak-free**
//! ([`ServeHandle::shutdown`] joins the acceptor, both workers and every
//! job-runner thread), and **stay std-only** (hand-rolled request
//! parser with bounded head and body, fixed `Content-Length` responses
//! framing each reply on the persistent connection).

use crate::json::{self, Value};
use crate::pool;
use crate::trace::{self, ExportFormat, LocalSession};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Connection workers sharing the accept loop. Scrapes are tiny and the
/// endpoints are cheap, so two are plenty; the point is the bound.
const WORKERS: usize = 2;
/// How often an idle worker re-checks the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(10);
/// Per-connection socket read/write timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(2);
/// Upper bound on the request head (request line + headers).
const MAX_HEAD: usize = 16 * 1024;
/// Upper bound on a request body (job specs are small documents).
const MAX_BODY: usize = 256 * 1024;
/// Event budget for each job's private trace session.
const JOB_TRACE_CAPACITY: usize = 1 << 20;
/// `/jobs/<id>/trace` chunk size when the query does not pick one.
const TRACE_CHUNK_DEFAULT: usize = 512;
/// Hard ceiling on a requested chunk size.
const TRACE_CHUNK_MAX: usize = 4096;
/// Concurrent job sessions unless [`ServeConfig::max_sessions`] says
/// otherwise.
const DEFAULT_MAX_SESSIONS: usize = 2;
/// Requests one keep-alive connection may serve before the server closes
/// it (bounds how long a single client can monopolise a worker).
const MAX_CONN_REQUESTS: usize = 100;
/// Terminal jobs older than this are evicted unless
/// [`ServeConfig::job_ttl`] says otherwise.
const DEFAULT_JOB_TTL: Duration = Duration::from_secs(15 * 60);
/// Queued (not yet running) submissions unless [`ServeConfig::max_queue`]
/// raises the bound; a full queue answers `429`.
const DEFAULT_MAX_QUEUE: usize = 32;
/// Minimum spacing between TTL eviction sweeps.
const SWEEP_INTERVAL_MS: u64 = 200;
/// `/logs` chunk size when the query does not pick one.
const LOGS_CHUNK_DEFAULT: usize = 512;

/// Where the instrumented run currently is, for `/healthz`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunState {
    /// Server is up, workload not started.
    Idle,
    /// Workload in flight — scrapes see live, still-growing metrics.
    Running,
    /// Workload finished; the server keeps serving the final state.
    Done,
}

impl RunState {
    /// Lower-case token used in the `/healthz` JSON.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            RunState::Idle => "idle",
            RunState::Running => "running",
            RunState::Done => "done",
        }
    }

    fn from_u8(v: u8) -> RunState {
        match v {
            1 => RunState::Running,
            2 => RunState::Done,
            _ => RunState::Idle,
        }
    }
}

/// Cooperative cancellation flag shared between the service and one
/// running job. `DELETE /jobs/<id>` sets it; a well-behaved handler polls
/// [`CancelToken::is_canceled`] at its natural checkpoints (the protocol
/// handler checks between repeats) and returns early.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-set token.
    #[must_use]
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    #[must_use]
    pub fn is_canceled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// Runs validated job specs for the service. The substrate stays
/// workload-agnostic: the binary installs a handler that knows the
/// benchmark recipes, and tests install synthetic ones.
pub trait JobHandler: Send + Sync {
    /// Check a submitted spec and return its normalised form, or a
    /// human-readable rejection (`400` to the client).
    ///
    /// # Errors
    /// A message describing why the spec is invalid.
    fn validate(&self, spec: &Value) -> Result<Value, String>;

    /// Execute a validated spec and return the result document. Called on
    /// a dedicated thread with the job's [`LocalSession`] already bound,
    /// so everything the run instruments lands in the job's own trace.
    /// Long-running handlers should poll `cancel` at natural checkpoints
    /// and bail with an error; a job whose cancel token is set when the
    /// handler errors out lands in the `canceled` terminal state.
    ///
    /// # Errors
    /// A message describing the failure (`failed` state on the job, or
    /// `canceled` when the token was set).
    fn run(&self, spec: &Value, cancel: &CancelToken) -> Result<Value, String>;
}

/// Lifecycle of one submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobState {
    Queued,
    Running,
    Done,
    Failed,
    Canceled,
}

impl JobState {
    fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Canceled => "canceled",
        }
    }

    fn terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Failed | JobState::Canceled)
    }
}

/// One registered job: spec, lifecycle, private trace session, outcome.
struct JobEntry {
    spec: Value,
    state: JobState,
    session: LocalSession,
    cancel: CancelToken,
    result: Option<Value>,
    error: Option<String>,
    submitted_s: f64,
    started_s: Option<f64>,
    finished_s: Option<f64>,
}

/// Session registry: live jobs, the admission queue, the runner threads
/// that shutdown must join, and the ids of jobs the TTL sweep removed
/// (kept so `GET /jobs/<id>` can answer `410 Gone` instead of `404`; an
/// id costs 8 bytes against the ring buffers eviction frees).
#[derive(Default)]
struct Registry {
    next_id: u64,
    jobs: BTreeMap<u64, JobEntry>,
    queue: VecDeque<u64>,
    running: usize,
    runners: Vec<JoinHandle<()>>,
    evicted: BTreeSet<u64>,
}

/// Server configuration for [`serve_with`].
pub struct ServeConfig {
    /// Port to bind on 127.0.0.1 (`0` picks an ephemeral port).
    pub port: u16,
    /// Concurrent job sessions; further jobs queue.
    pub max_sessions: usize,
    /// Peer `/metrics` endpoints to scrape and merge into this
    /// instance's exposition (`host:port` or `http://host:port[/path]`).
    pub federate: Vec<String>,
    /// Executes `POST /jobs` submissions; without one the job endpoints
    /// answer `503`.
    pub handler: Option<Arc<dyn JobHandler>>,
    /// Evict terminal jobs this long after they finish (`None` keeps
    /// them forever). Evicted ids answer `410 Gone`.
    pub job_ttl: Option<Duration>,
    /// Bound on queued (not yet running) submissions; a full queue
    /// answers `429` with `Retry-After`.
    pub max_queue: usize,
}

impl ServeConfig {
    /// Defaults: no federation, no handler, two concurrent sessions,
    /// 15-minute TTL on terminal jobs, 32 queued submissions.
    #[must_use]
    pub fn new(port: u16) -> ServeConfig {
        ServeConfig {
            port,
            max_sessions: DEFAULT_MAX_SESSIONS,
            federate: Vec::new(),
            handler: None,
            job_ttl: Some(DEFAULT_JOB_TTL),
            max_queue: DEFAULT_MAX_QUEUE,
        }
    }

    /// Cap concurrent job sessions (clamped to at least 1).
    #[must_use]
    pub fn max_sessions(mut self, n: usize) -> ServeConfig {
        self.max_sessions = n.max(1);
        self
    }

    /// How long terminal jobs linger before the sweep evicts them and
    /// frees their trace sessions; `None` keeps them forever.
    #[must_use]
    pub fn job_ttl(mut self, ttl: Option<Duration>) -> ServeConfig {
        self.job_ttl = ttl;
        self
    }

    /// Bound the submission queue (clamped to at least 1); a full queue
    /// answers `429`.
    #[must_use]
    pub fn max_queue(mut self, n: usize) -> ServeConfig {
        self.max_queue = n.max(1);
        self
    }

    /// Scrape-and-merge these peers into `/metrics`.
    #[must_use]
    pub fn federate(mut self, peers: Vec<String>) -> ServeConfig {
        self.federate = peers;
        self
    }

    /// Install the job handler backing `POST /jobs`.
    #[must_use]
    pub fn handler(mut self, handler: Arc<dyn JobHandler>) -> ServeConfig {
        self.handler = Some(handler);
        self
    }
}

/// Per-route service telemetry: request latency distribution plus a
/// response count per status code. Lives under one mutex in [`Shared`];
/// route keys are the fixed route *patterns*, so the map's cardinality is
/// bounded by the routing table, not by traffic.
struct RouteStat {
    latency: trace::Histogram,
    status: BTreeMap<u16, u64>,
}

impl RouteStat {
    fn new() -> RouteStat {
        RouteStat {
            latency: trace::Histogram::new(trace::SECONDS_BUCKETS),
            status: BTreeMap::new(),
        }
    }
}

/// State shared between the handle and the worker threads.
struct Shared {
    started: Instant,
    shutdown: AtomicBool,
    state: AtomicU8,
    requests: AtomicU64,
    runs_completed: AtomicU64,
    runs_total: AtomicU64,
    workload: Mutex<String>,
    max_sessions: usize,
    federate: Vec<String>,
    handler: Option<Arc<dyn JobHandler>>,
    job_ttl: Option<Duration>,
    max_queue: usize,
    jobs: Mutex<Registry>,
    jobs_submitted: AtomicU64,
    jobs_completed: AtomicU64,
    jobs_failed: AtomicU64,
    jobs_canceled: AtomicU64,
    jobs_evicted: AtomicU64,
    /// Uptime millisecond after which the next TTL sweep may run; the
    /// winner of the compare-exchange does the sweep.
    next_sweep_ms: AtomicU64,
    /// Per-route latency histograms and status counters, keyed by the
    /// normalised route pattern (see [`route_key`]).
    route_stats: Mutex<BTreeMap<&'static str, RouteStat>>,
}

impl Shared {
    fn uptime_s(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

/// A running service. Dropping the handle (or calling
/// [`ServeHandle::shutdown`]) stops the accept loop and joins every
/// worker and job-runner thread — no server threads survive the handle.
pub struct ServeHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
}

/// Bind `127.0.0.1:port` (`0` picks an ephemeral port) and start serving
/// the observability endpoints with default [`ServeConfig`] (no job
/// handler, no federation).
///
/// # Errors
/// Propagates the bind failure (port in use, permission).
pub fn serve(port: u16) -> std::io::Result<ServeHandle> {
    serve_with(ServeConfig::new(port))
}

/// Bind and start serving with an explicit configuration.
///
/// # Errors
/// Propagates the bind failure (port in use, permission).
pub fn serve_with(cfg: ServeConfig) -> std::io::Result<ServeHandle> {
    let listener = TcpListener::bind(("127.0.0.1", cfg.port))?;
    // Non-blocking accept + poll: shutdown needs no wake-up connection
    // and cannot race one worker stealing another's wake.
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        started: Instant::now(),
        shutdown: AtomicBool::new(false),
        state: AtomicU8::new(0),
        requests: AtomicU64::new(0),
        runs_completed: AtomicU64::new(0),
        runs_total: AtomicU64::new(0),
        workload: Mutex::new(String::new()),
        max_sessions: cfg.max_sessions,
        federate: cfg.federate,
        handler: cfg.handler,
        job_ttl: cfg.job_ttl,
        max_queue: cfg.max_queue.max(1),
        jobs: Mutex::new(Registry::default()),
        jobs_submitted: AtomicU64::new(0),
        jobs_completed: AtomicU64::new(0),
        jobs_failed: AtomicU64::new(0),
        jobs_canceled: AtomicU64::new(0),
        jobs_evicted: AtomicU64::new(0),
        next_sweep_ms: AtomicU64::new(0),
        route_stats: Mutex::new(BTreeMap::new()),
    });
    let worker_shared = Arc::clone(&shared);
    let acceptor = std::thread::Builder::new()
        .name("vpp-serve".to_string())
        .spawn(move || {
            std::thread::scope(|scope| {
                for _ in 0..WORKERS {
                    scope.spawn(|| worker(&listener, &worker_shared));
                }
            });
        })?;
    Ok(ServeHandle {
        addr,
        shared,
        acceptor: Some(acceptor),
    })
}

impl ServeHandle {
    /// The bound address (resolves the ephemeral port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current run state as reported by `/healthz`.
    #[must_use]
    pub fn state(&self) -> RunState {
        RunState::from_u8(self.shared.state.load(Ordering::SeqCst))
    }

    /// Advance the `/healthz` run state.
    pub fn set_state(&self, state: RunState) {
        let v = match state {
            RunState::Idle => 0,
            RunState::Running => 1,
            RunState::Done => 2,
        };
        self.shared.state.store(v, Ordering::SeqCst);
    }

    /// Name the workload and how many runs `/healthz` should expect.
    pub fn set_workload(&self, name: &str, runs_total: u64) {
        *lock(&self.shared.workload) = name.to_string();
        self.shared.runs_total.store(runs_total, Ordering::SeqCst);
    }

    /// Record one completed run (shows up in `/healthz` and `/metrics`).
    pub fn run_completed(&self) {
        self.shared.runs_completed.fetch_add(1, Ordering::SeqCst);
    }

    /// Requests served so far.
    #[must_use]
    pub fn requests(&self) -> u64 {
        self.shared.requests.load(Ordering::SeqCst)
    }

    /// Jobs in terminal states (done + failed) so far.
    #[must_use]
    pub fn jobs_finished(&self) -> u64 {
        self.shared.jobs_completed.load(Ordering::SeqCst)
            + self.shared.jobs_failed.load(Ordering::SeqCst)
    }

    /// Stop accepting, drain the workers, join every thread (including
    /// job runners — in-flight jobs run to completion, queued jobs never
    /// start). Returns once no server thread remains.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            if acceptor.join().is_err() {
                // A worker panicked; the scope already tore the rest down.
                eprintln!("vpp-serve: worker thread panicked during shutdown");
            }
        }
        // A finishing runner can spawn a successor through pump() right up
        // to the moment the flag lands, so drain until the list stays
        // empty. Handles are taken with the lock released before joining:
        // runners take the registry lock on their way out.
        loop {
            let handles = std::mem::take(&mut lock(&self.shared.jobs).runners);
            if handles.is_empty() {
                break;
            }
            for h in handles {
                if h.join().is_err() {
                    eprintln!("vpp-serve: job runner panicked");
                }
            }
        }
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn worker(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        maybe_sweep(shared);
        match listener.accept() {
            Ok((stream, _peer)) => handle_connection(stream, shared),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    // Accepted sockets inherit nothing useful from the non-blocking
    // listener on Linux, but make the contract explicit either way.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    // HTTP/1.1 keep-alive (RFC 9112 §9.3): one socket serves requests
    // until the client asks to close, a protocol error forces a close,
    // or the per-connection cap is reached. Bytes read past one request's
    // body carry over as the next request's prefix, so pipelined clients
    // work without any special casing.
    let mut carry: Vec<u8> = Vec::new();
    for served in 1..=MAX_CONN_REQUESTS {
        let req = match read_request(&mut stream, &mut carry) {
            Ok(req) => req,
            Err(ReadError::Respond(resp)) => {
                // The request was understood well enough to answer
                // (431/413/over-long body); these always close — the
                // connection's framing is no longer trustworthy.
                let _ = write_response(&mut stream, &resp, false, false);
                return;
            }
            Err(ReadError::TimedOutMidRequest) => {
                // The peer went quiet with a request half-sent: say so
                // (RFC 9110 §15.5.9) and close.
                crate::log_event!(
                    Warn,
                    "serve.http",
                    "connection stalled mid-request; answered 408 and closed",
                    served = served - 1,
                );
                let resp = Response::error(
                    408,
                    "Request Timeout",
                    "no complete request within the idle timeout\n",
                );
                let _ = write_response(&mut stream, &resp, false, false);
                return;
            }
            // Idle between requests (or never sent one) / disconnected:
            // close quietly, there is nobody to talk to.
            Err(ReadError::Idle | ReadError::Drop) => return,
        };
        shared.requests.fetch_add(1, Ordering::SeqCst);
        maybe_sweep(shared);
        let head_only = req.method == "HEAD";
        let t0 = Instant::now();
        let response = route(&req, shared);
        record_route(shared, &req.target, response.status, t0.elapsed());
        let keep = !req.close && served < MAX_CONN_REQUESTS;
        if write_response(&mut stream, &response, head_only, keep).is_err() || !keep {
            return;
        }
    }
}

/// A parsed request: line, relevant headers, body.
struct Request {
    method: String,
    target: String,
    body: Vec<u8>,
    /// Client asked to close after this exchange (`Connection: close`,
    /// or HTTP/1.0 without `keep-alive`).
    close: bool,
}

/// Why [`read_request`] could not produce a request.
enum ReadError {
    /// An error the client should see (oversized head → `431`, oversized
    /// body → `413`, body past the declared length on a closing
    /// connection → `400`); write it, then close.
    Respond(Response),
    /// No byte of a new request arrived (fresh or kept-alive connection
    /// idled out, or the peer closed cleanly between requests).
    Idle,
    /// The read timed out with a request partially received.
    TimedOutMidRequest,
    /// Malformed beyond answering, or the peer vanished mid-request.
    Drop,
}

fn timeout_kind(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Read and parse one request from a (possibly kept-alive) connection.
/// `carry` holds bytes already read past the previous request's body —
/// the next request's prefix under pipelining — and is refilled with this
/// request's surplus on success.
fn read_request(stream: &mut TcpStream, carry: &mut Vec<u8>) -> Result<Request, ReadError> {
    let mut head = std::mem::take(carry);
    let mut chunk = [0u8; 1024];
    let mut oversized = false;
    let head_end = loop {
        if let Some(end) = head_terminator(&head) {
            break Some(end);
        }
        if head.len() > MAX_HEAD {
            // Answer 431 rather than silently dropping — but keep reading
            // (to a hard cap) so a client that is still sending sees our
            // response instead of a reset from closing on unread bytes.
            oversized = true;
            if head.len() > 16 * MAX_HEAD {
                break None;
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                if head.is_empty() {
                    // Clean close between requests — not an error.
                    return Err(ReadError::Idle);
                }
                break None;
            }
            Ok(n) => head.extend_from_slice(&chunk[..n]),
            Err(e) if timeout_kind(&e) => {
                // An idle keep-alive connection is normal; a half-sent
                // request deserves a 408 so the client knows what died.
                return Err(if head.is_empty() {
                    ReadError::Idle
                } else {
                    ReadError::TimedOutMidRequest
                });
            }
            Err(_) => return Err(ReadError::Drop),
        }
    };
    if oversized {
        return Err(ReadError::Respond(Response::error(
            431,
            "Request Header Fields Too Large",
            format!("request head exceeds {MAX_HEAD} bytes\n"),
        )));
    }
    let Some(head_end) = head_end else {
        return Err(ReadError::Drop);
    };
    let (head_bytes, rest) = head.split_at(head_end);
    let text = String::from_utf8_lossy(head_bytes);
    let mut lines = text.lines();
    let request_line = lines.next().ok_or(ReadError::Drop)?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or(ReadError::Drop)?.to_string();
    let target = parts.next().ok_or(ReadError::Drop)?.to_string();
    let version = parts.next().ok_or(ReadError::Drop)?;
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Drop);
    }
    let mut content_length = 0usize;
    let mut connection = String::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| ReadError::Drop)?;
            } else if name.eq_ignore_ascii_case("connection") {
                connection = value.trim().to_ascii_lowercase();
            }
        }
    }
    // Persistent is the HTTP/1.1 default; HTTP/1.0 must opt in.
    let close = if version == "HTTP/1.0" {
        !connection.split(',').any(|t| t.trim() == "keep-alive")
    } else {
        connection.split(',').any(|t| t.trim() == "close")
    };
    if content_length > MAX_BODY {
        return Err(ReadError::Respond(Response::error(
            413,
            "Content Too Large",
            format!("request body exceeds {MAX_BODY} bytes\n"),
        )));
    }
    // Bytes past the terminator already read are the body's prefix.
    let mut body = rest.to_vec();
    while body.len() < content_length {
        match stream.read(&mut chunk) {
            Ok(0) => return Err(ReadError::Drop),
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) if timeout_kind(&e) => return Err(ReadError::TimedOutMidRequest),
            Err(_) => return Err(ReadError::Drop),
        }
    }
    // Surplus bytes are the next pipelined request — unless the client
    // declared this exchange final, in which case the body is simply
    // longer than its Content-Length and silently truncating it would
    // hide a framing bug on the client.
    *carry = body.split_off(content_length);
    if close && !carry.is_empty() {
        return Err(ReadError::Respond(Response::error(
            400,
            "Bad Request",
            format!("request body longer than the declared Content-Length ({content_length} bytes)\n"),
        )));
    }
    Ok(Request {
        method,
        target,
        body,
        close,
    })
}

/// Index just past the blank line ending the header block, accepting both
/// `\r\n\r\n` and the bare-`\n\n` form lenient clients send (RFC 9112
/// §2.2 recommends tolerating a missing CR).
fn head_terminator(buf: &[u8]) -> Option<usize> {
    let crlf = buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4);
    let lf = buf.windows(2).position(|w| w == b"\n\n").map(|i| i + 2);
    match (crlf, lf) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    }
}

struct Response {
    status: u16,
    reason: &'static str,
    content_type: &'static str,
    allow: Option<&'static str>,
    headers: Vec<(&'static str, String)>,
    body: String,
}

impl Response {
    fn json(status: u16, reason: &'static str, doc: &Value) -> Response {
        let mut body = doc.pretty();
        body.push('\n');
        Response {
            status,
            reason,
            content_type: "application/json",
            allow: None,
            headers: Vec::new(),
            body,
        }
    }

    /// The one error shape every 4xx/5xx answers with:
    /// `{"error": <reason phrase>, "detail": <what went wrong>}`.
    /// Clients branch on the stable `error` member; `detail` carries the
    /// full sentence a human (or a log line) wants.
    fn error(status: u16, reason: &'static str, detail: impl Into<String>) -> Response {
        let detail = detail.into();
        let doc = Value::Obj(vec![
            ("error".to_string(), Value::Str(reason.to_string())),
            (
                "detail".to_string(),
                Value::Str(detail.trim_end().to_string()),
            ),
        ]);
        Response::json(status, reason, &doc)
    }
}

/// The cursor-page contract shared by every jsonl stream endpoint
/// (`/jobs/<id>/trace`, `/logs`): the body stays pure jsonl while the
/// pagination state travels as headers — `X-Vpp-Next-Cursor` (pass back
/// as `after`), `X-Vpp-More` (records beyond this chunk were already
/// visible), one endpoint-specific state header, and `X-Vpp-Dropped`
/// (the endpoint's loss accounting).
fn cursor_page(
    body: String,
    next: u64,
    more: bool,
    state: (&'static str, String),
    dropped: String,
) -> Response {
    Response {
        status: 200,
        reason: "OK",
        content_type: ExportFormat::Jsonl.content_type(),
        allow: None,
        headers: vec![
            ("X-Vpp-Next-Cursor", next.to_string()),
            ("X-Vpp-More", more.to_string()),
            state,
            ("X-Vpp-Dropped", dropped),
        ],
        body,
    }
}

/// Write `r`; for a HEAD request (`head_only`) the status line and
/// headers — including the `Content-Length` the GET would have — go out
/// with no body, per RFC 9110 §9.3.2. `keep_alive` picks the
/// `Connection` header: the fixed `Content-Length` frames each response,
/// so a kept-alive client knows exactly where the next one starts.
fn write_response(
    stream: &mut TcpStream,
    r: &Response,
    head_only: bool,
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        r.status,
        r.reason,
        r.content_type,
        r.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    if let Some(allow) = r.allow {
        head.push_str("Allow: ");
        head.push_str(allow);
        head.push_str("\r\n");
    }
    for (name, value) in &r.headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    if !head_only {
        stream.write_all(r.body.as_bytes())?;
    }
    stream.flush()
}

/// Methods a known path answers; `None` means the path does not exist.
fn allowed_methods(path: &str) -> Option<&'static str> {
    match path {
        "/metrics" | "/healthz" | "/trace" | "/logs" => Some("GET, HEAD"),
        "/jobs" => Some("GET, HEAD, POST"),
        p => job_subpath(p).map(|(_, sub)| match sub {
            None => "GET, HEAD, DELETE",
            Some(_) => "GET, HEAD",
        }),
    }
}

/// Normalise a request target to its route *pattern* for per-route
/// telemetry: every `/jobs/17/trace` lands on `/jobs/<id>/trace`, and
/// unknown paths share one `<other>` bucket, so the label set is bounded
/// by the routing table regardless of traffic.
fn route_key(target: &str) -> &'static str {
    let path = target.split('?').next().unwrap_or(target);
    match path {
        "/metrics" => "/metrics",
        "/healthz" => "/healthz",
        "/trace" => "/trace",
        "/logs" => "/logs",
        "/jobs" => "/jobs",
        p => match job_subpath(p) {
            Some((_, None)) => "/jobs/<id>",
            Some((_, Some("trace"))) => "/jobs/<id>/trace",
            Some((_, Some("metrics"))) => "/jobs/<id>/metrics",
            _ => "<other>",
        },
    }
}

/// Fold one handled request into the per-route latency histogram and
/// status counter. One short lock per request; the map stays bounded
/// because [`route_key`] only ever returns route patterns.
fn record_route(shared: &Arc<Shared>, target: &str, status: u16, elapsed: Duration) {
    let key = route_key(target);
    let mut stats = lock(&shared.route_stats);
    let stat = stats.entry(key).or_insert_with(RouteStat::new);
    stat.latency.observe(elapsed.as_secs_f64());
    *stat.status.entry(status).or_insert(0) += 1;
}

/// Parse `/jobs/<id>[/trace|/metrics]` into `(id, subresource)`.
fn job_subpath(path: &str) -> Option<(u64, Option<&str>)> {
    let rest = path.strip_prefix("/jobs/")?;
    let mut segments = rest.split('/');
    let id: u64 = segments.next()?.parse().ok()?;
    let sub = segments.next();
    if segments.next().is_some() {
        return None;
    }
    match sub {
        None | Some("trace") | Some("metrics") => Some((id, sub)),
        Some(_) => None,
    }
}

fn route(req: &Request, shared: &Arc<Shared>) -> Response {
    let (path, query) = req.target.split_once('?').unwrap_or((&*req.target, ""));
    let Some(allow) = allowed_methods(path) else {
        return Response::error(
            404,
            "Not Found",
            "not found; endpoints: /metrics /healthz /trace?format=json|jsonl|csv \
             /logs?after=SEQ&level=warn /jobs /jobs/<id> (DELETE cancels) \
             /jobs/<id>/trace?after=SEQ /jobs/<id>/metrics\n",
        );
    };
    if !allow.split(", ").any(|m| m == req.method) {
        let mut r = Response::error(405, "Method Not Allowed", "method not allowed\n");
        r.allow = Some(allow);
        return r;
    }
    // HEAD takes the GET path; write_response withholds the body.
    let method = if req.method == "HEAD" { "GET" } else { &*req.method };
    match (method, path) {
        ("GET", "/metrics") => Response {
            status: 200,
            reason: "OK",
            content_type: ExportFormat::Prom.content_type(),
            allow: None,
            headers: Vec::new(),
            body: metrics_body(shared),
        },
        ("GET", "/healthz") => Response {
            status: 200,
            reason: "OK",
            content_type: "application/json",
            allow: None,
            headers: Vec::new(),
            body: healthz_body(shared),
        },
        ("GET", "/trace") => trace_response(query),
        ("GET", "/logs") => logs_response(query),
        ("POST", "/jobs") => post_job(&req.body, shared),
        ("GET", "/jobs") => jobs_list(shared),
        ("GET", _) => {
            let (id, sub) = job_subpath(path).expect("allowed_methods admitted the path");
            match sub {
                None => job_status(id, shared),
                Some("trace") => job_trace(id, query, shared),
                Some("metrics") => job_metrics(id, shared),
                Some(_) => unreachable!("job_subpath rejects other subresources"),
            }
        }
        ("DELETE", _) => {
            let (id, _) = job_subpath(path).expect("allowed_methods admitted the path");
            cancel_job(id, shared)
        }
        _ => unreachable!("allow list covers every dispatched method"),
    }
}

// ---------------------------------------------------------------------------
// Job service
// ---------------------------------------------------------------------------

fn post_job(body: &[u8], shared: &Arc<Shared>) -> Response {
    let Some(handler) = shared.handler.clone() else {
        return Response::error(
            503,
            "Service Unavailable",
            "no job handler installed; start the service via `vpp serve`\n",
        );
    };
    let Ok(text) = std::str::from_utf8(body) else {
        return Response::error(400, "Bad Request", "job spec is not UTF-8\n");
    };
    let spec = match json::parse(text) {
        Ok(v) => v,
        Err(e) => return Response::error(400, "Bad Request", format!("job spec is not JSON: {e}\n")),
    };
    let normalised = match handler.validate(&spec) {
        Ok(v) => v,
        Err(e) => return Response::error(400, "Bad Request", format!("invalid job spec: {e}\n")),
    };
    // Backpressure check and insert share one guard, so two racing
    // submissions cannot both squeeze past the bound.
    let id = {
        let mut reg = lock(&shared.jobs);
        if reg.queue.len() >= shared.max_queue {
            crate::log_event!(
                Warn,
                "serve.jobs",
                "submission queue full; answered 429",
                queued = reg.queue.len(),
                max_queue = shared.max_queue,
            );
            let mut resp = Response::error(
                429,
                "Too Many Requests",
                format!(
                    "submission queue is full ({} queued, bound {}); retry shortly\n",
                    reg.queue.len(),
                    shared.max_queue
                ),
            );
            resp.headers.push(("Retry-After", "1".to_string()));
            return resp;
        }
        let id = reg.next_id;
        reg.next_id += 1;
        reg.jobs.insert(
            id,
            JobEntry {
                spec: normalised,
                state: JobState::Queued,
                session: trace::local_session(JOB_TRACE_CAPACITY),
                cancel: CancelToken::new(),
                result: None,
                error: None,
                submitted_s: shared.uptime_s(),
                started_s: None,
                finished_s: None,
            },
        );
        reg.queue.push_back(id);
        id
    };
    shared.jobs_submitted.fetch_add(1, Ordering::SeqCst);
    pump(shared);
    let reg = lock(&shared.jobs);
    let entry = reg.jobs.get(&id).expect("inserted above");
    let mut resp = Response::json(201, "Created", &job_status_value(id, entry));
    resp.headers.push(("Location", format!("/jobs/{id}")));
    resp
}

/// `DELETE /jobs/<id>`: cancel. A queued job is terminal immediately
/// (and leaves the queue); a running job gets its cooperative token set
/// and keeps running until the handler's next cancel check (`202`); a
/// terminal job is a `409`, an evicted one `410`.
fn cancel_job(id: u64, shared: &Arc<Shared>) -> Response {
    let mut reg = lock(&shared.jobs);
    let Some(entry) = reg.jobs.get_mut(&id) else {
        return if reg.evicted.contains(&id) {
            gone(id)
        } else {
            Response::error(404, "Not Found", format!("no such job: {id}\n"))
        };
    };
    match entry.state {
        JobState::Queued => {
            entry.state = JobState::Canceled;
            entry.cancel.cancel();
            entry.finished_s = Some(shared.uptime_s());
            entry.error = Some("canceled before start".to_string());
            let doc = job_status_value(id, entry);
            reg.queue.retain(|q| *q != id);
            shared.jobs_canceled.fetch_add(1, Ordering::SeqCst);
            crate::log_event!(Warn, "serve.jobs", "queued job canceled", job = id);
            Response::json(200, "OK", &doc)
        }
        JobState::Running => {
            entry.cancel.cancel();
            Response::json(202, "Accepted", &job_status_value(id, entry))
        }
        terminal => Response::error(
            409,
            "Conflict",
            format!("job {id} is already terminal ({})\n", terminal.as_str()),
        ),
    }
}

/// `410 Gone` for a job id the TTL sweep removed.
fn gone(id: u64) -> Response {
    Response::error(
        410,
        "Gone",
        format!("job {id} was evicted after its TTL; its results are no longer held\n"),
    )
}

/// Evict terminal jobs older than the TTL, freeing their trace sessions.
/// Cheap enough to call from the request path: a compare-exchange on the
/// due time elects one sweeper per [`SWEEP_INTERVAL_MS`] window, and the
/// sweep itself is one pass over a registry the TTL keeps bounded. Runs
/// from both the worker idle loop (so eviction happens without traffic)
/// and the request loop (so held-open keep-alive workers still sweep).
fn maybe_sweep(shared: &Arc<Shared>) {
    let Some(ttl) = shared.job_ttl else { return };
    let now_ms = u64::try_from(shared.started.elapsed().as_millis()).unwrap_or(u64::MAX);
    let due = shared.next_sweep_ms.load(Ordering::SeqCst);
    if now_ms < due
        || shared
            .next_sweep_ms
            .compare_exchange(due, now_ms + SWEEP_INTERVAL_MS, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
    {
        return;
    }
    let ttl_s = ttl.as_secs_f64();
    let now_s = shared.uptime_s();
    let mut reg = lock(&shared.jobs);
    let expired: Vec<u64> = reg
        .jobs
        .iter()
        .filter(|(_, e)| {
            e.state.terminal() && e.finished_s.is_some_and(|t| now_s - t >= ttl_s)
        })
        .map(|(id, _)| *id)
        .collect();
    let swept = expired.len();
    for id in expired {
        // Dropping the entry drops its LocalSession — the last reference
        // to the job's ring buffer once any in-flight snapshot finishes.
        reg.jobs.remove(&id);
        reg.evicted.insert(id);
        shared.jobs_evicted.fetch_add(1, Ordering::SeqCst);
    }
    if swept > 0 {
        crate::log_event!(
            Warn,
            "serve.jobs",
            "TTL sweep evicted terminal jobs",
            evicted = swept,
            ttl_s = ttl_s,
        );
    }
}

/// Start queued jobs while session slots are free. Each runner gets its
/// own thread (named like the server threads so the leak tests count it)
/// and re-pumps when it finishes.
fn pump(shared: &Arc<Shared>) {
    let mut reg = lock(&shared.jobs);
    while reg.running < shared.max_sessions && !shared.shutdown.load(Ordering::SeqCst) {
        let Some(id) = reg.queue.pop_front() else {
            break;
        };
        if let Some(entry) = reg.jobs.get_mut(&id) {
            entry.state = JobState::Running;
            entry.started_s = Some(shared.uptime_s());
        }
        reg.running += 1;
        let runner_shared = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name("vpp-serve".to_string())
            .spawn(move || run_job(&runner_shared, id))
            .expect("spawn job runner");
        reg.runners.push(handle);
    }
}

fn run_job(shared: &Arc<Shared>, id: u64) {
    let handler = shared
        .handler
        .clone()
        .expect("jobs only enqueue when a handler is installed");
    let fetched = {
        let reg = lock(&shared.jobs);
        reg.jobs
            .get(&id)
            .map(|e| (e.session.clone(), e.spec.clone(), e.cancel.clone()))
    };
    let Some((session, spec, cancel)) = fetched else {
        // The entry vanished before the runner started; free the slot.
        lock(&shared.jobs).running -= 1;
        pump(shared);
        return;
    };
    // Bind the job's session to this thread and keep the whole workload
    // here: pool::serial makes inner par_map fan-in, so instrumentation
    // from every repeat lands in this job's recorder. Concurrency comes
    // from running many sessions, not threads within one. catch_unwind
    // keeps a panicking handler from stalling the queue (the binding is
    // inside, so unwinding restores the thread's trace state).
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _bind = session.bind();
        pool::serial(|| handler.run(&spec, &cancel))
    }));
    {
        let mut reg = lock(&shared.jobs);
        if let Some(entry) = reg.jobs.get_mut(&id) {
            entry.finished_s = Some(shared.uptime_s());
            match outcome {
                Ok(Ok(result)) => {
                    // A completed result wins even when a cancel raced it.
                    entry.state = JobState::Done;
                    entry.result = Some(result);
                    shared.jobs_completed.fetch_add(1, Ordering::SeqCst);
                }
                Ok(Err(message)) if cancel.is_canceled() => {
                    // The handler bailed after DELETE set the token: the
                    // cancel, not a workload fault, is what stopped it.
                    entry.state = JobState::Canceled;
                    crate::log_event!(
                        Warn,
                        "serve.jobs",
                        "job canceled mid-run",
                        job = id,
                        reason = message.as_str(),
                    );
                    entry.error = Some(message);
                    shared.jobs_canceled.fetch_add(1, Ordering::SeqCst);
                }
                Ok(Err(message)) => {
                    entry.state = JobState::Failed;
                    crate::log_event!(
                        Error,
                        "serve.jobs",
                        "job failed",
                        job = id,
                        error = message.as_str(),
                    );
                    entry.error = Some(message);
                    shared.jobs_failed.fetch_add(1, Ordering::SeqCst);
                }
                Err(_) => {
                    entry.state = JobState::Failed;
                    crate::log_event!(
                        Error,
                        "serve.jobs",
                        "job handler panicked",
                        job = id,
                    );
                    entry.error = Some("job handler panicked".to_string());
                    shared.jobs_failed.fetch_add(1, Ordering::SeqCst);
                }
            }
        }
        reg.running -= 1;
    }
    pump(shared);
}

fn job_status_value(id: u64, entry: &JobEntry) -> Value {
    let mut obj = vec![
        ("id".to_string(), Value::Num(id as f64)),
        (
            "state".to_string(),
            Value::Str(entry.state.as_str().to_string()),
        ),
        ("spec".to_string(), entry.spec.clone()),
        (
            "trace".to_string(),
            Value::Obj(vec![
                (
                    "admitted".to_string(),
                    Value::Num(entry.session.admitted() as f64),
                ),
                (
                    "dropped".to_string(),
                    Value::Num(entry.session.dropped() as f64),
                ),
            ]),
        ),
        ("submitted_s".to_string(), Value::Num(entry.submitted_s)),
    ];
    if entry.cancel.is_canceled() && !entry.state.terminal() {
        obj.push(("cancel_requested".to_string(), Value::Bool(true)));
    }
    if let Some(t) = entry.started_s {
        obj.push(("started_s".to_string(), Value::Num(t)));
    }
    if let Some(t) = entry.finished_s {
        obj.push(("finished_s".to_string(), Value::Num(t)));
    }
    if let Some(result) = &entry.result {
        obj.push(("result".to_string(), result.clone()));
    }
    if let Some(error) = &entry.error {
        obj.push(("error".to_string(), Value::Str(error.clone())));
    }
    Value::Obj(obj)
}

/// `GET /jobs`. The whole listing — per-job rows, `running`, `queued`,
/// `evicted` — reads under ONE registry guard, so the document is a
/// coherent snapshot (counts always tally with the rows) rather than a
/// torn read across separate lock acquisitions.
fn jobs_list(shared: &Arc<Shared>) -> Response {
    let reg = lock(&shared.jobs);
    let jobs: Vec<Value> = reg
        .jobs
        .iter()
        .map(|(id, entry)| {
            let mut obj = vec![
                ("id".to_string(), Value::Num(*id as f64)),
                (
                    "state".to_string(),
                    Value::Str(entry.state.as_str().to_string()),
                ),
                ("submitted_s".to_string(), Value::Num(entry.submitted_s)),
            ];
            if let Some(Value::Str(w)) = entry.spec.get("workload") {
                obj.push(("workload".to_string(), Value::Str(w.clone())));
            }
            Value::Obj(obj)
        })
        .collect();
    let doc = Value::Obj(vec![
        (
            "max_sessions".to_string(),
            Value::Num(shared.max_sessions as f64),
        ),
        (
            "max_queue".to_string(),
            Value::Num(shared.max_queue as f64),
        ),
        ("running".to_string(), Value::Num(reg.running as f64)),
        ("queued".to_string(), Value::Num(reg.queue.len() as f64)),
        (
            "evicted".to_string(),
            Value::Num(reg.evicted.len() as f64),
        ),
        ("jobs".to_string(), Value::Arr(jobs)),
    ]);
    Response::json(200, "OK", &doc)
}

fn job_status(id: u64, shared: &Arc<Shared>) -> Response {
    let reg = lock(&shared.jobs);
    match reg.jobs.get(&id) {
        Some(entry) => Response::json(200, "OK", &job_status_value(id, entry)),
        None if reg.evicted.contains(&id) => gone(id),
        None => Response::error(404, "Not Found", format!("no such job: {id}\n")),
    }
}

/// Cursor-streamed jsonl over one job's live trace. `after` is the cursor
/// from the previous chunk (0 for the first poll), `limit` bounds the
/// chunk. The next cursor and whether more events were already visible
/// travel as headers so the body stays pure jsonl.
fn job_trace(id: u64, query: &str, shared: &Arc<Shared>) -> Response {
    let params = match parse_query(query, &["after", "limit", "format"]) {
        Ok(p) => p,
        Err(e) => return Response::error(400, "Bad Request", format!("{e}\n")),
    };
    let mut after = 0u64;
    let mut limit = TRACE_CHUNK_DEFAULT;
    for (key, value) in &params {
        // Form decoding turns `+` into a space (`?after=+5` arrives as
        // " 5"), so integer params trim before parsing.
        match key.as_str() {
            "after" => match value.trim().parse() {
                Ok(v) => after = v,
                Err(_) => {
                    return Response::error(
                        400,
                        "Bad Request",
                        format!("'after' must be a cursor integer, got '{value}'\n"),
                    )
                }
            },
            "limit" => match value.trim().parse::<usize>() {
                Ok(v) if v >= 1 => limit = v.min(TRACE_CHUNK_MAX),
                _ => {
                    return Response::error(
                        400,
                        "Bad Request",
                        format!("'limit' must be a positive integer, got '{value}'\n"),
                    )
                }
            },
            "format" => {
                if value != "jsonl" {
                    return Response::error(
                        400,
                        "Bad Request",
                        format!("job traces stream as jsonl only, got '{value}'\n"),
                    );
                }
            }
            _ => unreachable!("parse_query rejects unknown keys"),
        }
    }
    let (session, state) = {
        let reg = lock(&shared.jobs);
        match reg.jobs.get(&id) {
            Some(entry) => (entry.session.clone(), entry.state),
            None if reg.evicted.contains(&id) => return gone(id),
            None => return Response::error(404, "Not Found", format!("no such job: {id}\n")),
        }
    };
    let chunk = session.events_after(after, limit);
    let mut body = String::new();
    for ev in &chunk.events {
        body.push_str(&ev.to_json().compact());
        body.push('\n');
    }
    cursor_page(
        body,
        chunk.next,
        chunk.more,
        ("X-Vpp-Job-State", state.as_str().to_string()),
        session.dropped().to_string(),
    )
}

fn job_metrics(id: u64, shared: &Arc<Shared>) -> Response {
    let (session, state) = {
        let reg = lock(&shared.jobs);
        match reg.jobs.get(&id) {
            Some(entry) => (entry.session.clone(), entry.state),
            None if reg.evicted.contains(&id) => return gone(id),
            None => return Response::error(404, "Not Found", format!("no such job: {id}\n")),
        }
    };
    let mut body = session.metrics_snapshot().to_prom();
    body.push_str(&format!(
        "# TYPE vpp_job_trace_events_admitted counter\nvpp_job_trace_events_admitted {}\n\
         # TYPE vpp_job_trace_events_dropped counter\nvpp_job_trace_events_dropped {}\n\
         # TYPE vpp_job_terminal gauge\nvpp_job_terminal {}\n",
        session.admitted(),
        session.dropped(),
        u8::from(state.terminal()),
    ));
    Response {
        status: 200,
        reason: "OK",
        content_type: ExportFormat::Prom.content_type(),
        allow: None,
        headers: Vec::new(),
        body,
    }
}

// ---------------------------------------------------------------------------
// Query parsing
// ---------------------------------------------------------------------------

/// Strict query-string parse: every key must be in `allowed` (unknown
/// keys are a client error, not a shrug), and keys and values are decoded
/// as `application/x-www-form-urlencoded` (`%XX` escapes plus `+` as
/// space) so values survive proxy re-encoding and HTML-form submission.
fn parse_query(query: &str, allowed: &[&str]) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    for part in query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = part.split_once('=').unwrap_or((part, ""));
        let key = form_decode(key)?;
        let value = form_decode(value)?;
        if !allowed.contains(&key.as_str()) {
            return Err(format!(
                "unknown query key '{key}' (expected {})",
                allowed.join("|")
            ));
        }
        out.push((key, value));
    }
    Ok(out)
}

/// Decode a query component per `application/x-www-form-urlencoded`:
/// `%XX` escapes (RFC 3986) plus `+` as space — browsers and `curl -d`
/// both produce `+` for spaces, so pure percent-decoding mis-reads them.
/// Malformed escapes and non-UTF-8 results are errors rather than passed
/// through mangled.
fn form_decode(s: &str) -> Result<String, String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'+' {
            out.push(b' ');
            i += 1;
        } else if bytes[i] == b'%' {
            let hex = bytes
                .get(i + 1..i + 3)
                .and_then(|h| std::str::from_utf8(h).ok())
                .ok_or_else(|| format!("truncated percent escape in '{s}'"))?;
            let decoded = u8::from_str_radix(hex, 16)
                .map_err(|_| format!("bad percent escape '%{hex}' in '{s}'"))?;
            out.push(decoded);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| format!("'{s}' does not decode to UTF-8"))
}

// ---------------------------------------------------------------------------
// Observability endpoints
// ---------------------------------------------------------------------------

/// Live session exposition plus the server's own series; with federation
/// configured, peers' expositions are scraped and merged in with
/// `peer="..."` labels. The session part is empty (not an error) when no
/// recorder is installed, so a scraper configured before the run starts
/// sees `vpp_up 1` immediately.
fn metrics_body(shared: &Arc<Shared>) -> String {
    let mut out = trace::live_metrics().map(|m| m.to_prom()).unwrap_or_default();
    let uptime = shared.uptime_s();
    out.push_str("# TYPE vpp_up gauge\nvpp_up 1\n");
    out.push_str(&format!(
        "# TYPE vpp_serve_uptime_seconds gauge\nvpp_serve_uptime_seconds {uptime}\n"
    ));
    out.push_str(&format!(
        "# TYPE vpp_serve_requests_total counter\nvpp_serve_requests_total {}\n",
        shared.requests.load(Ordering::SeqCst)
    ));
    out.push_str(&format!(
        "# TYPE vpp_serve_runs_completed_total counter\nvpp_serve_runs_completed_total {}\n",
        shared.runs_completed.load(Ordering::SeqCst)
    ));
    out.push_str(&format!(
        "# TYPE vpp_serve_jobs_submitted_total counter\nvpp_serve_jobs_submitted_total {}\n",
        shared.jobs_submitted.load(Ordering::SeqCst)
    ));
    out.push_str(&format!(
        "# TYPE vpp_serve_jobs_completed_total counter\nvpp_serve_jobs_completed_total {}\n",
        shared.jobs_completed.load(Ordering::SeqCst)
    ));
    out.push_str(&format!(
        "# TYPE vpp_serve_jobs_failed_total counter\nvpp_serve_jobs_failed_total {}\n",
        shared.jobs_failed.load(Ordering::SeqCst)
    ));
    out.push_str(&format!(
        "# TYPE vpp_serve_jobs_canceled_total counter\nvpp_serve_jobs_canceled_total {}\n",
        shared.jobs_canceled.load(Ordering::SeqCst)
    ));
    out.push_str(&format!(
        "# TYPE vpp_serve_jobs_evicted_total counter\nvpp_serve_jobs_evicted_total {}\n",
        shared.jobs_evicted.load(Ordering::SeqCst)
    ));
    {
        let reg = lock(&shared.jobs);
        out.push_str(&format!(
            "# TYPE vpp_serve_jobs_running gauge\nvpp_serve_jobs_running {}\n\
             # TYPE vpp_serve_jobs_queued gauge\nvpp_serve_jobs_queued {}\n",
            reg.running,
            reg.queue.len()
        ));
    }
    route_stats_exposition(shared, &mut out);
    if !shared.federate.is_empty() {
        merge_federated(&mut out, &shared.federate);
    }
    out
}

/// Render the per-route request-latency histograms and status counters.
/// Both families' samples carry a `route` label (and `status` for the
/// counter); the `# TYPE` line is emitted once per family, ahead of the
/// first sample, as strict parsers require.
fn route_stats_exposition(shared: &Arc<Shared>, out: &mut String) {
    let stats = lock(&shared.route_stats);
    if stats.is_empty() {
        return;
    }
    out.push_str("# TYPE vpp_serve_request_seconds histogram\n");
    for (route, stat) in stats.iter() {
        let labels = format!("route=\"{}\"", trace::prom_label_value(route));
        stat.latency
            .to_prom_lines("vpp_serve_request_seconds", &labels, out);
    }
    out.push_str("# TYPE vpp_serve_response_status_total counter\n");
    for (route, stat) in stats.iter() {
        for (status, n) in &stat.status {
            out.push_str(&format!(
                "vpp_serve_response_status_total{{route=\"{}\",status=\"{status}\"}} {n}\n",
                trace::prom_label_value(route)
            ));
        }
    }
}

/// Scrape each peer's exposition and append it with a `peer="..."` label
/// on every sample. `# TYPE` lines are deduplicated against families this
/// document already declared, so the merged exposition still parses under
/// a strict "sample after its declaration" reader.
fn merge_federated(out: &mut String, peers: &[String]) {
    let mut declared: BTreeSet<String> = out
        .lines()
        .filter_map(|l| l.strip_prefix("# TYPE "))
        .filter_map(|rest| rest.split_whitespace().next())
        .map(str::to_string)
        .collect();
    out.push_str("# TYPE vpp_federate_peer_up gauge\n");
    declared.insert("vpp_federate_peer_up".to_string());
    let mut merged = String::new();
    for peer in peers {
        let up = match scrape_peer(peer) {
            Ok(text) => {
                merge_exposition(&mut merged, &mut declared, peer, &text);
                1
            }
            Err(e) => {
                crate::log_event!(
                    Warn,
                    "serve.federate",
                    "peer scrape failed",
                    peer = peer.as_str(),
                    error = e.as_str(),
                );
                0
            }
        };
        out.push_str(&format!(
            "vpp_federate_peer_up{{peer=\"{}\"}} {up}\n",
            trace::prom_label_value(peer)
        ));
    }
    out.push_str(&merged);
}

/// Fold one peer exposition into `merged`, labelling every sample with
/// its origin. Comment lines other than undeclared `# TYPE`s are dropped.
fn merge_exposition(
    merged: &mut String,
    declared: &mut BTreeSet<String>,
    peer: &str,
    text: &str,
) {
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            if let Some(name) = rest.split_whitespace().next() {
                if declared.insert(name.to_string()) {
                    merged.push_str(line);
                    merged.push('\n');
                }
            }
            continue;
        }
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let Some((name_and_labels, value)) = line.rsplit_once(' ') else {
            continue; // not a sample line; skip rather than corrupt
        };
        let peer_label = format!("peer=\"{}\"", trace::prom_label_value(peer));
        let relabelled = match name_and_labels.split_once('{') {
            Some((name, labels)) => format!("{name}{{{peer_label},{labels}"),
            None => format!("{name_and_labels}{{{peer_label}}}"),
        };
        merged.push_str(&relabelled);
        merged.push(' ');
        merged.push_str(value);
        merged.push('\n');
    }
}

/// Minimal HTTP GET of a peer's `/metrics`. Accepts `host:port` or
/// `http://host:port[/path]`; anything but a 200 is an error.
fn scrape_peer(peer: &str) -> Result<String, String> {
    let rest = peer.strip_prefix("http://").unwrap_or(peer);
    let (hostport, path) = match rest.find('/') {
        Some(i) => (&rest[..i], &rest[i..]),
        None => (rest, "/metrics"),
    };
    let addr = hostport
        .to_socket_addrs()
        .map_err(|e| format!("resolve {hostport}: {e}"))?
        .next()
        .ok_or_else(|| format!("resolve {hostport}: no address"))?;
    let mut stream = TcpStream::connect_timeout(&addr, IO_TIMEOUT)
        .map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {hostport}\r\nConnection: close\r\n\r\n"
    )
    .map_err(|e| format!("send to {addr}: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("read from {addr}: {e}"))?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .or_else(|| raw.split_once("\n\n"))
        .ok_or_else(|| format!("malformed response from {addr}"))?;
    let status = head.split_whitespace().nth(1).unwrap_or("");
    if status != "200" {
        return Err(format!("peer {addr} answered {status}"));
    }
    Ok(body.to_string())
}

fn healthz_body(shared: &Arc<Shared>) -> String {
    let state = RunState::from_u8(shared.state.load(Ordering::SeqCst));
    let (running, queued) = {
        let reg = lock(&shared.jobs);
        (reg.running, reg.queue.len())
    };
    // Level and per-level drop counts come from one journal guard
    // acquisition, so the two can never disagree mid-snapshot.
    let log = trace::log_stats();
    let mut doc = Value::Obj(vec![
        (
            "state".to_string(),
            Value::Str(state.as_str().to_string()),
        ),
        (
            "workload".to_string(),
            Value::Str(lock(&shared.workload).clone()),
        ),
        ("uptime_s".to_string(), Value::Num(shared.uptime_s())),
        ("tracing".to_string(), Value::Bool(trace::enabled())),
        (
            "requests".to_string(),
            Value::Num(shared.requests.load(Ordering::SeqCst) as f64),
        ),
        (
            "runs_completed".to_string(),
            Value::Num(shared.runs_completed.load(Ordering::SeqCst) as f64),
        ),
        (
            "runs_total".to_string(),
            Value::Num(shared.runs_total.load(Ordering::SeqCst) as f64),
        ),
        ("jobs_running".to_string(), Value::Num(running as f64)),
        ("jobs_queued".to_string(), Value::Num(queued as f64)),
        (
            "jobs_evicted".to_string(),
            Value::Num(shared.jobs_evicted.load(Ordering::SeqCst) as f64),
        ),
        ("log_level".to_string(), Value::Str(log.level.name().to_string())),
        (
            "log_dropped".to_string(),
            Value::Obj(
                trace::LogLevel::ALL
                    .into_iter()
                    .map(|l| {
                        (
                            l.name().to_string(),
                            Value::Num(log.dropped[l as usize] as f64),
                        )
                    })
                    .collect(),
            ),
        ),
    ])
    .pretty();
    doc.push('\n');
    doc
}

fn trace_response(query: &str) -> Response {
    let params = match parse_query(query, &["format"]) {
        Ok(p) => p,
        Err(e) => return Response::error(400, "Bad Request", format!("{e}\n")),
    };
    let requested = params
        .iter()
        .rev()
        .find(|(k, _)| k == "format")
        .map_or("json", |(_, v)| v.as_str());
    let fmt: ExportFormat = match requested.parse() {
        Ok(f) => f,
        Err(e) => return Response::error(400, "Bad Request", format!("{e}\n")),
    };
    if !matches!(
        fmt,
        ExportFormat::Json | ExportFormat::Jsonl | ExportFormat::Csv
    ) {
        return Response::error(
            400,
            "Bad Request",
            format!(
                "format '{fmt}' is not servable here; use json|jsonl|csv \
                 (the prometheus exposition lives at /metrics)\n"
            ),
        );
    }
    match trace::live_report() {
        Some(report) => Response {
            status: 200,
            reason: "OK",
            content_type: fmt.content_type(),
            allow: None,
            headers: Vec::new(),
            body: report
                .render(fmt)
                .expect("json|jsonl|csv always serialise"),
        },
        None => Response::error(503, "Service Unavailable", "no active trace session\n"),
    }
}

/// `GET /logs?after=SEQ&limit=N&level=warn`: cursor-streamed jsonl over
/// the process-wide structured journal. Mirrors `/jobs/<id>/trace`: the
/// body is pure jsonl, the next cursor and whether more records were
/// already admitted travel as headers, and because journal seqs are dense
/// every record at or above the requested level is delivered exactly once
/// across chunks.
fn logs_response(query: &str) -> Response {
    let params = match parse_query(query, &["after", "limit", "level"]) {
        Ok(p) => p,
        Err(e) => return Response::error(400, "Bad Request", format!("{e}\n")),
    };
    let mut after = 0u64;
    let mut limit = LOGS_CHUNK_DEFAULT;
    let mut min_level = trace::LogLevel::Debug;
    for (key, value) in &params {
        match key.as_str() {
            "after" => match value.trim().parse() {
                Ok(v) => after = v,
                Err(_) => {
                    return Response::error(
                        400,
                        "Bad Request",
                        format!("'after' must be a cursor integer, got '{value}'\n"),
                    )
                }
            },
            "limit" => match value.trim().parse::<usize>() {
                Ok(v) if v >= 1 => limit = v.min(TRACE_CHUNK_MAX),
                _ => {
                    return Response::error(
                        400,
                        "Bad Request",
                        format!("'limit' must be a positive integer, got '{value}'\n"),
                    )
                }
            },
            "level" => match value.parse() {
                Ok(l) => min_level = l,
                Err(e) => return Response::error(400, "Bad Request", format!("{e}\n")),
            },
            _ => unreachable!("parse_query rejects unknown keys"),
        }
    }
    let chunk = trace::logs_after(after, limit, min_level);
    let mut body = String::new();
    for rec in &chunk.records {
        body.push_str(&rec.to_json().compact());
        body.push('\n');
    }
    let dropped = trace::LogLevel::ALL
        .into_iter()
        .map(|l| format!("{}={}", l.name(), chunk.dropped[l as usize]))
        .collect::<Vec<_>>()
        .join(",");
    cursor_page(
        body,
        chunk.next,
        chunk.more,
        ("X-Vpp-Log-Level", trace::log_level().name().to_string()),
        dropped,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, target: &str) -> (u16, String, String) {
        request(addr, "GET", target)
    }

    fn request(addr: SocketAddr, method: &str, target: &str) -> (u16, String, String) {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write!(
            s,
            "{method} {target} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
        )
        .expect("send request");
        let mut raw = String::new();
        s.read_to_string(&mut raw).expect("read response");
        let (head, body) = raw.split_once("\r\n\r\n").expect("header terminator");
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .expect("status code")
            .parse()
            .expect("numeric status");
        (status, head.to_string(), body.to_string())
    }

    #[test]
    fn serves_metrics_and_honours_content_length() {
        let h = serve(0).expect("bind ephemeral");
        let (status, head, body) = get(h.addr(), "/metrics");
        assert_eq!(status, 200);
        assert!(head.contains("Content-Type: text/plain; version=0.0.4"));
        assert!(body.contains("vpp_up 1"));
        assert!(body.contains("vpp_serve_requests_total"));
        let len: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("content-length header")
            .parse()
            .unwrap();
        assert_eq!(len, body.len());
        h.shutdown();
    }

    #[test]
    fn unknown_paths_and_methods_are_rejected() {
        let h = serve(0).expect("bind ephemeral");
        let (status, _, body) = get(h.addr(), "/nope");
        assert_eq!(status, 404);
        assert!(body.contains("/metrics"));
        let (status, head, _) = request(h.addr(), "POST", "/metrics");
        assert_eq!(status, 405);
        assert!(head.contains("Allow: GET, HEAD"));
        let (status, head, _) = request(h.addr(), "DELETE", "/jobs");
        assert_eq!(status, 405);
        assert!(head.contains("Allow: GET, HEAD, POST"));
        h.shutdown();
    }

    #[test]
    fn trace_endpoint_needs_a_session_and_a_servable_format() {
        let h = serve(0).expect("bind ephemeral");
        let (status, _, body) = get(h.addr(), "/trace");
        assert_eq!(status, 503, "no session active: {body}");
        let (status, _, body) = get(h.addr(), "/trace?format=yaml");
        assert_eq!(status, 400);
        assert!(body.contains("unknown format"));
        let (status, _, body) = get(h.addr(), "/trace?format=prom");
        assert_eq!(status, 400);
        assert!(body.contains("/metrics"));
        let (status, _, body) = get(h.addr(), "/trace?fmt=json");
        assert_eq!(status, 400, "unknown query keys are rejected");
        assert!(body.contains("unknown query key 'fmt'"), "{body}");
        h.shutdown();
    }

    #[test]
    fn healthz_reports_handle_state() {
        let h = serve(0).expect("bind ephemeral");
        h.set_workload("unit_bench", 3);
        let (status, _, body) = get(h.addr(), "/healthz");
        assert_eq!(status, 200);
        assert!(body.contains("\"state\": \"idle\""), "{body}");
        h.set_state(RunState::Running);
        h.run_completed();
        let (_, _, body) = get(h.addr(), "/healthz");
        assert!(body.contains("\"state\": \"running\""), "{body}");
        assert!(body.contains("\"workload\": \"unit_bench\""), "{body}");
        h.set_state(RunState::Done);
        assert_eq!(h.state(), RunState::Done);
        assert!(h.requests() >= 2);
        h.shutdown();
    }

    #[test]
    fn percent_decoding_and_strictness() {
        assert_eq!(form_decode("jsonl").unwrap(), "jsonl");
        assert_eq!(form_decode("json%6C").unwrap(), "jsonl");
        assert_eq!(form_decode("a%20b").unwrap(), "a b");
        // x-www-form-urlencoded: `+` is a space, and an encoded `%2B`
        // is the only way to say a literal plus.
        assert_eq!(form_decode("a+b").unwrap(), "a b");
        assert_eq!(form_decode("a%2Bb").unwrap(), "a+b");
        assert!(form_decode("bad%2").is_err());
        assert!(form_decode("bad%zz").is_err());
        assert!(form_decode("%ff").is_err(), "lone 0xff is not UTF-8");

        let ok = parse_query("after=10&limit=5", &["after", "limit"]).unwrap();
        assert_eq!(ok, vec![
            ("after".to_string(), "10".to_string()),
            ("limit".to_string(), "5".to_string()),
        ]);
        assert!(parse_query("nope=1", &["after"]).is_err());
        assert!(parse_query("", &["after"]).unwrap().is_empty());
        // A proxy-encoded key still matches its allowed name.
        let enc = parse_query("%66ormat=json%6C", &["format"]).unwrap();
        assert_eq!(enc, vec![("format".to_string(), "jsonl".to_string())]);
        // `?after=+5` decodes to " 5"; the integer endpoints trim it.
        let plus = parse_query("after=+5", &["after"]).unwrap();
        assert_eq!(plus, vec![("after".to_string(), " 5".to_string())]);
    }

    #[test]
    fn head_terminator_accepts_both_line_endings() {
        assert_eq!(head_terminator(b"GET / HTTP/1.1\r\n\r\nrest"), Some(18));
        assert_eq!(head_terminator(b"GET / HTTP/1.1\n\nrest"), Some(16));
        assert_eq!(head_terminator(b"GET / HTTP/1.1\r\n"), None);
    }

    #[test]
    fn bare_lf_requests_are_served() {
        let h = serve(0).expect("bind ephemeral");
        let mut s = TcpStream::connect(h.addr()).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // Lenient head: LF-only line endings, no CR anywhere.
        s.write_all(b"GET /healthz HTTP/1.1\nHost: x\nConnection: close\n\n")
            .unwrap();
        let mut raw = String::new();
        s.read_to_string(&mut raw).expect("read response");
        assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
        h.shutdown();
    }

    #[test]
    fn oversized_head_gets_431_not_a_dropped_connection() {
        let h = serve(0).expect("bind ephemeral");
        let mut s = TcpStream::connect(h.addr()).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write!(s, "GET /metrics HTTP/1.1\r\n").unwrap();
        let filler = format!("X-Filler: {}\r\n", "y".repeat(1000));
        for _ in 0..(MAX_HEAD / filler.len() + 2) {
            s.write_all(filler.as_bytes()).unwrap();
        }
        s.write_all(b"\r\n\r\n").unwrap();
        let mut raw = String::new();
        s.read_to_string(&mut raw).expect("read response");
        assert!(raw.starts_with("HTTP/1.1 431"), "{raw}");
        h.shutdown();
    }

    #[test]
    fn head_requests_mirror_get_headers_without_a_body() {
        let h = serve(0).expect("bind ephemeral");
        let (get_status, get_head, get_body) = get(h.addr(), "/healthz");
        assert_eq!(get_status, 200);
        let mut s = TcpStream::connect(h.addr()).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write!(s, "HEAD /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").unwrap();
        let mut raw = String::new();
        s.read_to_string(&mut raw).expect("read response");
        let (head, body) = raw.split_once("\r\n\r\n").expect("header terminator");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.is_empty(), "HEAD must not carry a body: {body:?}");
        let cl = |h: &str| -> usize {
            h.lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .expect("content-length")
                .parse()
                .unwrap()
        };
        // Content-Length advertises what GET would send (modulo the
        // uptime field's width, so compare against the GET's own body).
        assert!(cl(head) > 0);
        assert_eq!(cl(&get_head), get_body.len());
        h.shutdown();
    }

    #[test]
    fn job_endpoints_require_a_handler() {
        let h = serve(0).expect("bind ephemeral");
        let mut s = TcpStream::connect(h.addr()).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let body = "{}";
        write!(
            s,
            "POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )
        .unwrap();
        let mut raw = String::new();
        s.read_to_string(&mut raw).expect("read response");
        assert!(raw.starts_with("HTTP/1.1 503"), "{raw}");
        // The registry endpoints still answer (empty).
        let (status, _, body) = get(h.addr(), "/jobs");
        assert_eq!(status, 200);
        assert!(body.contains("\"jobs\": []"), "{body}");
        let (status, _, _) = get(h.addr(), "/jobs/0");
        assert_eq!(status, 404);
        h.shutdown();
    }

    /// Read exactly one `Content-Length`-framed response off a kept-alive
    /// stream. Bytes past the framed body — the start of the next
    /// pipelined response, which the server may write back-to-back with
    /// this one — stay in `carry` for the next call.
    fn read_framed_with(s: &mut TcpStream, carry: &mut Vec<u8>) -> (u16, String, String) {
        let mut buf = std::mem::take(carry);
        let mut chunk = [0u8; 1024];
        let head_end = loop {
            if let Some(end) = head_terminator(&buf) {
                break end;
            }
            let n = s.read(&mut chunk).expect("read head");
            assert!(n > 0, "connection closed before a full response head");
            buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
        let len: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("content-length header")
            .parse()
            .unwrap();
        let mut body = buf[head_end..].to_vec();
        while body.len() < len {
            let n = s.read(&mut chunk).expect("read body");
            assert!(n > 0, "connection closed mid-body");
            body.extend_from_slice(&chunk[..n]);
        }
        *carry = body.split_off(len);
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .expect("status code")
            .parse()
            .expect("numeric status");
        (status, head, String::from_utf8_lossy(&body).to_string())
    }

    /// `read_framed_with` for lockstep request/response exchanges, where
    /// no second response can be in flight behind the first.
    fn read_framed(s: &mut TcpStream) -> (u16, String, String) {
        let mut carry = Vec::new();
        let out = read_framed_with(s, &mut carry);
        assert!(carry.is_empty(), "over-read past the framed body");
        out
    }

    #[test]
    fn keep_alive_serves_multiple_requests_on_one_socket() {
        let h = serve(0).expect("bind ephemeral");
        let mut s = TcpStream::connect(h.addr()).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // No Connection header: HTTP/1.1 defaults to persistent.
        s.write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let (status, head, _) = read_framed(&mut s);
        assert_eq!(status, 200);
        assert!(head.contains("Connection: keep-alive"), "{head}");
        // Same socket, second exchange.
        s.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let (status, head, body) = read_framed(&mut s);
        assert_eq!(status, 200);
        assert!(head.contains("Connection: keep-alive"), "{head}");
        assert!(body.contains("vpp_up 1"), "{body}");
        // Asking to close is honored: the response says close and the
        // server hangs up after it.
        s.write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
            .unwrap();
        let (status, head, _) = read_framed(&mut s);
        assert_eq!(status, 200);
        assert!(head.contains("Connection: close"), "{head}");
        let mut rest = Vec::new();
        s.read_to_end(&mut rest).expect("read to EOF");
        assert!(rest.is_empty(), "bytes after the final response");
        h.shutdown();
    }

    #[test]
    fn pipelined_requests_are_answered_in_order() {
        let h = serve(0).expect("bind ephemeral");
        let mut s = TcpStream::connect(h.addr()).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // Both requests in one write; the surplus past the first head
        // must carry over as the second request.
        s.write_all(
            b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n\
              GET /nope HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
        )
        .unwrap();
        let mut carry = Vec::new();
        let (status, _, body) = read_framed_with(&mut s, &mut carry);
        assert_eq!(status, 200);
        assert!(body.contains("\"state\""), "{body}");
        let (status, _, body) = read_framed_with(&mut s, &mut carry);
        assert_eq!(status, 404, "{body}");
        assert!(carry.is_empty(), "bytes after the final response");
        h.shutdown();
    }

    #[test]
    fn half_sent_request_gets_408_idle_connection_closes_quietly() {
        let h = serve(0).expect("bind ephemeral");
        // A half-sent request times out into an explicit 408.
        let mut s = TcpStream::connect(h.addr()).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s.write_all(b"GET /healthz HT").unwrap();
        let mut raw = String::new();
        s.read_to_string(&mut raw).expect("read response");
        assert!(raw.starts_with("HTTP/1.1 408"), "{raw}");
        // A connection that never sends a byte is closed with no
        // response at all (and without wedging the worker pool).
        let mut idle = TcpStream::connect(h.addr()).expect("connect");
        idle.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut raw = String::new();
        idle.read_to_string(&mut raw).expect("read EOF");
        assert!(raw.is_empty(), "idle connection got a response: {raw}");
        h.shutdown();
    }

    #[test]
    fn body_longer_than_declared_is_rejected_on_a_closing_request() {
        let h = serve(0).expect("bind ephemeral");
        let mut s = TcpStream::connect(h.addr()).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // Declares 2 bytes, sends 7, and says close — the extra bytes
        // cannot be a pipelined request, so this is a framing error.
        s.write_all(
            b"POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 2\r\nConnection: close\r\n\r\n{}extra",
        )
        .unwrap();
        let mut raw = String::new();
        s.read_to_string(&mut raw).expect("read response");
        assert!(raw.starts_with("HTTP/1.1 400"), "{raw}");
        assert!(raw.contains("longer than the declared Content-Length"), "{raw}");
        h.shutdown();
    }

    #[test]
    fn merged_expositions_label_peer_samples() {
        let mut declared = BTreeSet::new();
        declared.insert("vpp_up".to_string());
        let mut merged = String::new();
        let peer_text = "# TYPE vpp_up gauge\nvpp_up 1\n# TYPE foo_total counter\nfoo_total{a=\"b\"} 3\n";
        merge_exposition(&mut merged, &mut declared, "peer-1:9", peer_text);
        assert!(merged.contains("vpp_up{peer=\"peer-1:9\"} 1"), "{merged}");
        assert!(merged.contains("foo_total{peer=\"peer-1:9\",a=\"b\"} 3"), "{merged}");
        // The duplicate TYPE for vpp_up was dropped, foo_total's kept.
        assert!(!merged.contains("# TYPE vpp_up"), "{merged}");
        assert!(merged.contains("# TYPE foo_total counter"), "{merged}");
    }
}
