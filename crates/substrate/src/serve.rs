//! Zero-dependency observability server (DESIGN.md §3.7).
//!
//! A minimal HTTP/1.1 exposition endpoint over [`std::net::TcpListener`],
//! modelled on the pull-based collector stacks the paper's methodology
//! uses out-of-band (Cray PM → LDMS → OMNI): a scraper polls the process
//! instead of the process pushing samples. Three read-only endpoints:
//!
//! * `GET /metrics` — Prometheus text exposition (version 0.0.4) of the
//!   live trace session ([`trace::live_metrics`]) plus the server's own
//!   `vpp_up` / `vpp_serve_*` series. Works with no session active.
//! * `GET /healthz` — JSON run state (`idle` / `running` / `done`),
//!   workload name, uptime, request and run counters.
//! * `GET /trace?format=json|jsonl|csv` — the in-flight session's
//!   [`trace::live_report`] rendered through
//!   [`ExportFormat`](trace::ExportFormat); `503` when no session is
//!   active, `400` on formats that are not servable snapshots (`tree` is
//!   interactive-only, `prom` lives at `/metrics`).
//!
//! Design constraints, in order: **never perturb the run** (requests read
//! non-draining snapshots; the accept loop is a fixed two-worker scoped
//! pool, the same bounded-thread idiom as [`crate::pool`]), **shut down
//! leak-free** ([`ServeHandle::shutdown`] joins every thread; the
//! listener is non-blocking and polled, so workers notice the flag within
//! one poll interval without wake-up connections), and **stay std-only**
//! (hand-rolled request-line parser, bounded header read, fixed
//! `Content-Length` responses with `Connection: close`).

use crate::json::Value;
use crate::trace::{self, ExportFormat};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Connection workers sharing the accept loop. Scrapes are tiny and the
/// endpoints are read-only, so two are plenty; the point is the bound.
const WORKERS: usize = 2;
/// How often an idle worker re-checks the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(10);
/// Per-connection socket read/write timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(2);
/// Upper bound on the request head (request line + headers).
const MAX_HEAD: usize = 16 * 1024;

/// Where the instrumented run currently is, for `/healthz`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunState {
    /// Server is up, workload not started.
    Idle,
    /// Workload in flight — scrapes see live, still-growing metrics.
    Running,
    /// Workload finished; the server keeps serving the final state.
    Done,
}

impl RunState {
    /// Lower-case token used in the `/healthz` JSON.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            RunState::Idle => "idle",
            RunState::Running => "running",
            RunState::Done => "done",
        }
    }

    fn from_u8(v: u8) -> RunState {
        match v {
            1 => RunState::Running,
            2 => RunState::Done,
            _ => RunState::Idle,
        }
    }
}

/// State shared between the handle and the worker threads.
struct Shared {
    started: Instant,
    shutdown: AtomicBool,
    state: AtomicU8,
    requests: AtomicU64,
    runs_completed: AtomicU64,
    runs_total: AtomicU64,
    workload: Mutex<String>,
}

/// A running observability server. Dropping the handle (or calling
/// [`ServeHandle::shutdown`]) stops the accept loop and joins every
/// worker thread — no listener threads survive the handle.
pub struct ServeHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
}

/// Bind `127.0.0.1:port` (`0` picks an ephemeral port) and start serving.
///
/// # Errors
/// Propagates the bind failure (port in use, permission).
pub fn serve(port: u16) -> std::io::Result<ServeHandle> {
    let listener = TcpListener::bind(("127.0.0.1", port))?;
    // Non-blocking accept + poll: shutdown needs no wake-up connection
    // and cannot race one worker stealing another's wake.
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        started: Instant::now(),
        shutdown: AtomicBool::new(false),
        state: AtomicU8::new(0),
        requests: AtomicU64::new(0),
        runs_completed: AtomicU64::new(0),
        runs_total: AtomicU64::new(0),
        workload: Mutex::new(String::new()),
    });
    let worker_shared = Arc::clone(&shared);
    let acceptor = std::thread::Builder::new()
        .name("vpp-serve".to_string())
        .spawn(move || {
            std::thread::scope(|scope| {
                for _ in 0..WORKERS {
                    scope.spawn(|| worker(&listener, &worker_shared));
                }
            });
        })?;
    Ok(ServeHandle {
        addr,
        shared,
        acceptor: Some(acceptor),
    })
}

impl ServeHandle {
    /// The bound address (resolves the ephemeral port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current run state as reported by `/healthz`.
    #[must_use]
    pub fn state(&self) -> RunState {
        RunState::from_u8(self.shared.state.load(Ordering::SeqCst))
    }

    /// Advance the `/healthz` run state.
    pub fn set_state(&self, state: RunState) {
        let v = match state {
            RunState::Idle => 0,
            RunState::Running => 1,
            RunState::Done => 2,
        };
        self.shared.state.store(v, Ordering::SeqCst);
    }

    /// Name the workload and how many runs `/healthz` should expect.
    pub fn set_workload(&self, name: &str, runs_total: u64) {
        *lock_str(&self.shared.workload) = name.to_string();
        self.shared.runs_total.store(runs_total, Ordering::SeqCst);
    }

    /// Record one completed run (shows up in `/healthz` and `/metrics`).
    pub fn run_completed(&self) {
        self.shared.runs_completed.fetch_add(1, Ordering::SeqCst);
    }

    /// Requests served so far.
    #[must_use]
    pub fn requests(&self) -> u64 {
        self.shared.requests.load(Ordering::SeqCst)
    }

    /// Stop accepting, drain the workers and join every thread. Returns
    /// once no server thread remains.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            if acceptor.join().is_err() {
                // A worker panicked; the scope already tore the rest down.
                eprintln!("vpp-serve: worker thread panicked during shutdown");
            }
        }
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

fn lock_str(m: &Mutex<String>) -> std::sync::MutexGuard<'_, String> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn worker(listener: &TcpListener, shared: &Shared) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => handle_connection(stream, shared),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    // Accepted sockets inherit nothing useful from the non-blocking
    // listener on Linux, but make the contract explicit either way.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let Some((method, target)) = read_request_head(&mut stream) else {
        return; // malformed, oversized or timed-out request head
    };
    shared.requests.fetch_add(1, Ordering::SeqCst);
    let response = route(&method, &target, shared);
    let _ = write_response(&mut stream, &response);
}

/// Read until the blank line ending the header block and parse the
/// request line. `None` on malformed input; the connection is just
/// dropped (a scraper retries, and there is nothing useful to say).
fn read_request_head(stream: &mut TcpStream) -> Option<(String, String)> {
    let mut head = Vec::new();
    let mut chunk = [0u8; 1024];
    while !contains_blank_line(&head) {
        if head.len() > MAX_HEAD {
            return None;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(&chunk[..n]),
            Err(_) => return None,
        }
    }
    let text = String::from_utf8_lossy(&head);
    let request_line = text.lines().next()?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next()?.to_string();
    let target = parts.next()?.to_string();
    let version = parts.next()?;
    if !version.starts_with("HTTP/1.") {
        return None;
    }
    Some((method, target))
}

fn contains_blank_line(buf: &[u8]) -> bool {
    buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n")
}

struct Response {
    status: u16,
    reason: &'static str,
    content_type: &'static str,
    allow: Option<&'static str>,
    body: String,
}

impl Response {
    fn text(status: u16, reason: &'static str, body: impl Into<String>) -> Response {
        Response {
            status,
            reason,
            content_type: "text/plain; charset=utf-8",
            allow: None,
            body: body.into(),
        }
    }
}

fn write_response(stream: &mut TcpStream, r: &Response) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        r.status,
        r.reason,
        r.content_type,
        r.body.len()
    );
    if let Some(allow) = r.allow {
        head.push_str("Allow: ");
        head.push_str(allow);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(r.body.as_bytes())?;
    stream.flush()
}

fn route(method: &str, target: &str, shared: &Shared) -> Response {
    let (path, query) = target.split_once('?').unwrap_or((target, ""));
    if method != "GET" {
        let mut r = Response::text(405, "Method Not Allowed", "method not allowed\n");
        r.allow = Some("GET");
        return r;
    }
    match path {
        "/metrics" => Response {
            status: 200,
            reason: "OK",
            content_type: ExportFormat::Prom.content_type(),
            allow: None,
            body: metrics_body(shared),
        },
        "/healthz" => Response {
            status: 200,
            reason: "OK",
            content_type: "application/json",
            allow: None,
            body: healthz_body(shared),
        },
        "/trace" => trace_response(query),
        _ => Response::text(
            404,
            "Not Found",
            "not found; endpoints: /metrics /healthz /trace?format=json|jsonl|csv\n",
        ),
    }
}

/// Live session exposition plus the server's own series. The session part
/// is empty (not an error) when no recorder is installed, so a scraper
/// configured before the run starts sees `vpp_up 1` immediately.
fn metrics_body(shared: &Shared) -> String {
    let mut out = trace::live_metrics().map(|m| m.to_prom()).unwrap_or_default();
    let uptime = shared.started.elapsed().as_secs_f64();
    out.push_str("# TYPE vpp_up gauge\nvpp_up 1\n");
    out.push_str(&format!(
        "# TYPE vpp_serve_uptime_seconds gauge\nvpp_serve_uptime_seconds {uptime}\n"
    ));
    out.push_str(&format!(
        "# TYPE vpp_serve_requests_total counter\nvpp_serve_requests_total {}\n",
        shared.requests.load(Ordering::SeqCst)
    ));
    out.push_str(&format!(
        "# TYPE vpp_serve_runs_completed_total counter\nvpp_serve_runs_completed_total {}\n",
        shared.runs_completed.load(Ordering::SeqCst)
    ));
    out
}

fn healthz_body(shared: &Shared) -> String {
    let state = RunState::from_u8(shared.state.load(Ordering::SeqCst));
    let mut doc = Value::Obj(vec![
        (
            "state".to_string(),
            Value::Str(state.as_str().to_string()),
        ),
        (
            "workload".to_string(),
            Value::Str(lock_str(&shared.workload).clone()),
        ),
        (
            "uptime_s".to_string(),
            Value::Num(shared.started.elapsed().as_secs_f64()),
        ),
        ("tracing".to_string(), Value::Bool(trace::enabled())),
        (
            "requests".to_string(),
            Value::Num(shared.requests.load(Ordering::SeqCst) as f64),
        ),
        (
            "runs_completed".to_string(),
            Value::Num(shared.runs_completed.load(Ordering::SeqCst) as f64),
        ),
        (
            "runs_total".to_string(),
            Value::Num(shared.runs_total.load(Ordering::SeqCst) as f64),
        ),
    ])
    .pretty();
    doc.push('\n');
    doc
}

fn trace_response(query: &str) -> Response {
    let requested = query
        .split('&')
        .find_map(|kv| kv.strip_prefix("format="))
        .unwrap_or("json");
    let fmt: ExportFormat = match requested.parse() {
        Ok(f) => f,
        Err(e) => return Response::text(400, "Bad Request", format!("{e}\n")),
    };
    if !matches!(
        fmt,
        ExportFormat::Json | ExportFormat::Jsonl | ExportFormat::Csv
    ) {
        return Response::text(
            400,
            "Bad Request",
            format!(
                "format '{fmt}' is not servable here; use json|jsonl|csv \
                 (the prometheus exposition lives at /metrics)\n"
            ),
        );
    }
    match trace::live_report() {
        Some(report) => Response {
            status: 200,
            reason: "OK",
            content_type: fmt.content_type(),
            allow: None,
            body: report
                .render(fmt)
                .expect("json|jsonl|csv always serialise"),
        },
        None => Response::text(503, "Service Unavailable", "no active trace session\n"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, target: &str) -> (u16, String, String) {
        request(addr, "GET", target)
    }

    fn request(addr: SocketAddr, method: &str, target: &str) -> (u16, String, String) {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write!(
            s,
            "{method} {target} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
        )
        .expect("send request");
        let mut raw = String::new();
        s.read_to_string(&mut raw).expect("read response");
        let (head, body) = raw.split_once("\r\n\r\n").expect("header terminator");
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .expect("status code")
            .parse()
            .expect("numeric status");
        (status, head.to_string(), body.to_string())
    }

    #[test]
    fn serves_metrics_and_honours_content_length() {
        let h = serve(0).expect("bind ephemeral");
        let (status, head, body) = get(h.addr(), "/metrics");
        assert_eq!(status, 200);
        assert!(head.contains("Content-Type: text/plain; version=0.0.4"));
        assert!(body.contains("vpp_up 1"));
        assert!(body.contains("vpp_serve_requests_total"));
        let len: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("content-length header")
            .parse()
            .unwrap();
        assert_eq!(len, body.len());
        h.shutdown();
    }

    #[test]
    fn unknown_paths_and_methods_are_rejected() {
        let h = serve(0).expect("bind ephemeral");
        let (status, _, body) = get(h.addr(), "/nope");
        assert_eq!(status, 404);
        assert!(body.contains("/metrics"));
        let (status, head, _) = request(h.addr(), "POST", "/metrics");
        assert_eq!(status, 405);
        assert!(head.contains("Allow: GET"));
        h.shutdown();
    }

    #[test]
    fn trace_endpoint_needs_a_session_and_a_servable_format() {
        let h = serve(0).expect("bind ephemeral");
        let (status, _, body) = get(h.addr(), "/trace");
        assert_eq!(status, 503, "no session active: {body}");
        let (status, _, body) = get(h.addr(), "/trace?format=yaml");
        assert_eq!(status, 400);
        assert!(body.contains("unknown format"));
        let (status, _, body) = get(h.addr(), "/trace?format=prom");
        assert_eq!(status, 400);
        assert!(body.contains("/metrics"));
        h.shutdown();
    }

    #[test]
    fn healthz_reports_handle_state() {
        let h = serve(0).expect("bind ephemeral");
        h.set_workload("unit_bench", 3);
        let (status, _, body) = get(h.addr(), "/healthz");
        assert_eq!(status, 200);
        assert!(body.contains("\"state\": \"idle\""), "{body}");
        h.set_state(RunState::Running);
        h.run_completed();
        let (_, _, body) = get(h.addr(), "/healthz");
        assert!(body.contains("\"state\": \"running\""), "{body}");
        assert!(body.contains("\"workload\": \"unit_bench\""), "{body}");
        h.set_state(RunState::Done);
        assert_eq!(h.state(), RunState::Done);
        assert!(h.requests() >= 2);
        h.shutdown();
    }
}
