//! A scoped-thread work pool.
//!
//! [`par_map`] distributes items over `min(available_parallelism, items)`
//! scoped worker threads pulling indices from a shared atomic counter, so an
//! expensive straggler does not serialise the tail the way static chunking
//! would. Results come back in input order.
//!
//! Nested parallelism is deliberately flattened: a `par_map` issued from
//! inside a pool worker runs serially on that worker. The experiment
//! harness nests three levels deep (figure runners → benchmark sweeps →
//! protocol repeats); only the outermost level fans out, which keeps the
//! thread count bounded by the machine width instead of the product of the
//! nesting arities.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// True on threads already owned by a pool scope.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Number of workers a top-level `par_map` will spawn for `n` items.
#[must_use]
pub fn workers_for(n: usize) -> usize {
    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    cpus.min(n).max(1)
}

/// Map `f` over owned `items` in parallel, preserving input order.
///
/// Panics in `f` propagate to the caller (the scope re-raises the first
/// worker panic when it joins).
pub fn par_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let workers = workers_for(n);
    if workers <= 1 || IN_POOL.with(Cell::get) {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
    let results: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                IN_POOL.with(|flag| flag.set(true));
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = slots[i]
                        .lock()
                        .expect("poisoned input slot")
                        .take()
                        .expect("item claimed twice");
                    let out = f(item);
                    *results[i].lock().expect("poisoned result slot") = Some(out);
                }
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("poisoned result slot")
                .expect("worker skipped an item")
        })
        .collect()
}

/// Run `f` with this thread marked as pool-owned, so any [`par_map`]
/// issued inside runs inline on the calling thread instead of fanning out.
///
/// This is how a job-service session keeps a whole workload on its one
/// bound thread: the thread-local trace binding and the span stack are
/// per-thread, so inner parallelism would escape the session's recorder.
/// Concurrency then comes from running many sessions, not from threads
/// within one. The previous mark is restored on exit (nesting is safe).
pub fn serial<R>(f: impl FnOnce() -> R) -> R {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            IN_POOL.with(|flag| flag.set(self.0));
        }
    }
    let _restore = Restore(IN_POOL.with(|flag| flag.replace(true)));
    f()
}

/// Borrowing variant of [`par_map`]: map `f` over `&items` in parallel,
/// preserving input order.
pub fn par_map_ref<'a, T, U, F>(items: &'a [T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&'a T) -> U + Sync,
{
    par_map(items.iter().collect(), f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn results_preserve_input_order() {
        let out = par_map((0..100).collect::<Vec<i64>>(), |x| x * x);
        assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<i64>>());
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<i32> = par_map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_runs_inline() {
        let out = par_map(vec![7usize], |x| x + 1);
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn borrowing_variant_matches() {
        let items = vec![1.0f64, 2.0, 3.0];
        let out = par_map_ref(&items, |x| x * 10.0);
        assert_eq!(out, vec![10.0, 20.0, 30.0]);
    }

    #[test]
    fn work_actually_spreads_across_threads() {
        // With >1 worker, at least one item must run off the caller thread
        // (statistically certain with 64 items blocking briefly).
        if workers_for(64) <= 1 {
            return; // single-core machine: nothing to assert
        }
        let caller = std::thread::current().id();
        let off_thread = AtomicBool::new(false);
        par_map((0..64).collect::<Vec<u32>>(), |_| {
            if std::thread::current().id() != caller {
                off_thread.store(true, Ordering::Relaxed);
            }
            std::thread::sleep(std::time::Duration::from_micros(200));
        });
        assert!(off_thread.load(Ordering::Relaxed));
    }

    #[test]
    fn nested_calls_run_serially_without_deadlock() {
        let out = par_map((0..8).collect::<Vec<usize>>(), |i| {
            // Inner call from a worker thread: must complete inline.
            let inner = par_map((0..4).collect::<Vec<usize>>(), move |j| i * 10 + j);
            inner.iter().sum::<usize>()
        });
        assert_eq!(out.len(), 8);
        assert_eq!(out[2], 20 + 21 + 22 + 23);
    }

    #[test]
    fn serial_scope_keeps_par_map_on_the_calling_thread() {
        let caller = std::thread::current().id();
        let out = serial(|| {
            par_map((0..32).collect::<Vec<u32>>(), |i| {
                assert_eq!(std::thread::current().id(), caller);
                i * 2
            })
        });
        assert_eq!(out[31], 62);
        // The mark is restored: a later par_map may fan out again.
        assert!(!IN_POOL.with(Cell::get));
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let _ = par_map(vec![1, 2, 3], |x| {
            if x == 2 {
                panic!("boom");
            }
            x
        });
    }
}
