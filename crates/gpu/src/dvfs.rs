//! Dynamic voltage and frequency scaling (DVFS) curve.
//!
//! Power capping on NVIDIA GPUs is implemented by the driver lowering the
//! graphics clock until board power fits under the limit. The physics:
//! dynamic power ≈ `C · f · V(f)²`, with the voltage `V` falling with the
//! clock `f` until it hits the rail's floor, after which power falls only
//! linearly with `f`. This module models that curve in normalised form
//! (`f = 1` is the boost clock, `phi = 1` the full dynamic power).
//!
//! The production throttle response in [`crate::power`] uses a directly
//! calibrated curve (`DESIGN.md` §3.1); this DVFS model is the physical
//! baseline it is checked against in the `ablations` bench.

/// Normalised voltage/frequency curve with a voltage floor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DvfsCurve {
    /// Voltage floor as a fraction of the boost-clock voltage.
    pub v_floor: f64,
    /// Lowest reachable normalised clock (`min_clock / boost_clock`).
    pub f_min: f64,
}

impl DvfsCurve {
    /// Curve for the A100 (210 MHz floor out of 1410 MHz boost; ~0.7 V floor
    /// out of ~1.0 V peak rail, normalised).
    #[must_use]
    pub fn a100() -> Self {
        Self {
            v_floor: 0.70,
            f_min: 210.0 / 1410.0,
        }
    }

    /// Normalised voltage at normalised clock `f`.
    #[must_use]
    pub fn voltage(&self, f: f64) -> f64 {
        f.max(self.v_floor)
    }

    /// Fraction of full dynamic power drawn at normalised clock `f`:
    /// `phi(f) = f · V(f)²`, so `phi(1) = 1`.
    #[must_use]
    pub fn power_fraction(&self, f: f64) -> f64 {
        let f = f.clamp(self.f_min, 1.0);
        let v = self.voltage(f);
        f * v * v
    }

    /// Invert [`Self::power_fraction`]: the highest clock whose dynamic power
    /// does not exceed `phi`. Returns `f_min` when `phi` is below the
    /// reachable floor (the cap is then violated — regulation cannot go
    /// lower) and `1.0` when `phi >= 1`.
    #[must_use]
    pub fn clock_for_power(&self, phi: f64) -> f64 {
        if phi >= 1.0 {
            return 1.0;
        }
        let phi_floor_knee = self.v_floor.powi(3); // phi at f = v_floor
        let f = if phi >= phi_floor_knee {
            // Cubic regime: phi = f^3 (since V = f there).
            phi.cbrt()
        } else {
            // Linear regime: phi = f * v_floor^2.
            phi / (self.v_floor * self.v_floor)
        };
        f.clamp(self.f_min, 1.0)
    }
}

impl Default for DvfsCurve {
    fn default() -> Self {
        Self::a100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_clock_draws_full_power() {
        let c = DvfsCurve::a100();
        assert!((c.power_fraction(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn power_fraction_is_monotone_in_clock() {
        let c = DvfsCurve::a100();
        let mut last = -1.0;
        let mut f = c.f_min;
        while f <= 1.0 {
            let p = c.power_fraction(f);
            assert!(p >= last, "phi must be non-decreasing");
            last = p;
            f += 0.01;
        }
    }

    #[test]
    fn cubic_above_voltage_floor() {
        let c = DvfsCurve::a100();
        let f = 0.9;
        assert!((c.power_fraction(f) - f * f * f).abs() < 1e-12);
    }

    #[test]
    fn linear_below_voltage_floor() {
        let c = DvfsCurve::a100();
        let f = 0.5; // below v_floor = 0.7
        assert!((c.power_fraction(f) - f * 0.49).abs() < 1e-12);
    }

    #[test]
    fn clock_for_power_inverts_power_fraction() {
        let c = DvfsCurve::a100();
        for phi in [0.2, 0.35, 0.5, 0.7, 0.9, 0.99] {
            let f = c.clock_for_power(phi);
            assert!(
                (c.power_fraction(f) - phi).abs() < 1e-9,
                "phi = {phi}, f = {f}"
            );
        }
    }

    #[test]
    fn unreachable_power_clamps_to_clock_floor() {
        let c = DvfsCurve::a100();
        let f = c.clock_for_power(1e-6);
        assert_eq!(f, c.f_min);
        assert!(c.power_fraction(f) > 1e-6, "floor power exceeds request");
    }

    #[test]
    fn overfull_request_clamps_to_boost() {
        let c = DvfsCurve::a100();
        assert_eq!(c.clock_for_power(2.0), 1.0);
    }
}
