//! Kernel execution under the power model and power caps.

use crate::calib::{A100Spec, ThrottleCalib};
use crate::kernel::{Kernel, KernelKind};
use crate::variability::GpuVariability;
use vpp_sim::PowerTrace;

/// Outcome of executing one kernel on a (possibly capped) GPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Executed {
    /// Wall-clock duration after any throttling, seconds.
    pub duration_s: f64,
    /// Constant board power over that duration, watts.
    pub watts: f64,
    /// Normalised performance (1 = unthrottled).
    pub perf: f64,
}

/// One A100 board instance: the shared spec plus this board's manufacturing
/// variability and its current power limit.
///
/// ```
/// use vpp_gpu::{Gpu, Kernel, KernelKind};
///
/// let mut gpu = Gpu::nominal();
/// let gemm = Kernel::new(KernelKind::TensorGemm, 2.0e7, 1.0);
/// let free = gpu.execute(&gemm);
/// assert!(free.watts > 350.0);          // near TDP uncapped
///
/// gpu.set_power_limit(200.0);           // nvidia-smi -pl 200
/// let capped = gpu.execute(&gemm);
/// assert!(capped.watts <= 200.0);       // regulated
/// assert!(capped.duration_s > 1.0);     // and slower
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Gpu {
    spec: A100Spec,
    calib: ThrottleCalib,
    var: GpuVariability,
    power_limit_w: f64,
}

impl Gpu {
    /// A board with the given variability sample, capped at the default
    /// (maximum) power limit.
    #[must_use]
    pub fn new(spec: A100Spec, calib: ThrottleCalib, var: GpuVariability) -> Self {
        let limit = spec.max_cap_w;
        Self {
            spec,
            calib,
            var,
            power_limit_w: limit,
        }
    }

    /// A nominal board (no variability) with default spec and calibration.
    #[must_use]
    pub fn nominal() -> Self {
        Self::new(
            A100Spec::default(),
            ThrottleCalib::default(),
            GpuVariability::nominal(),
        )
    }

    /// The board's spec.
    #[must_use]
    pub fn spec(&self) -> &A100Spec {
        &self.spec
    }

    /// This board's idle power, watts (includes variability offset).
    #[must_use]
    pub fn idle_w(&self) -> f64 {
        self.spec.idle_w + self.var.idle_offset_w
    }

    /// Current power limit, watts.
    #[must_use]
    pub fn power_limit_w(&self) -> f64 {
        self.power_limit_w
    }

    /// Set the power limit, clamped to the device's settable range
    /// (100–400 W on the A100-40GB), exactly as `nvidia-smi -pl` does.
    /// Returns the limit actually applied.
    pub fn set_power_limit(&mut self, watts: f64) -> f64 {
        assert!(watts.is_finite(), "bad power limit");
        self.power_limit_w = watts.clamp(self.spec.min_cap_w, self.spec.max_cap_w);
        self.power_limit_w
    }

    /// Reset to the default limit (TDP).
    pub fn reset_power_limit(&mut self) {
        self.power_limit_w = self.spec.max_cap_w;
    }

    /// SM utilisation produced by a kernel of the given width:
    /// `x / (1 + x)` with `x = width / work_capacity`. The slow saturation
    /// of this curve is what lets power keep rising with NPLWV well past
    /// the reference sizes (Fig. 7 left) before the Fig. 6 plateau.
    #[must_use]
    pub fn utilisation(&self, width: f64) -> f64 {
        debug_assert!(width >= 0.0);
        let x = width / self.spec.work_capacity;
        x / (1.0 + x)
    }

    /// Effective arithmetic intensity of a kernel: interpolates from the
    /// kind's base intensity toward its over-subscription ceiling as the
    /// width grows far beyond the saturation scale (overlapping streams,
    /// giant batches — how 2048-atom cells pull the GPUs near TDP even in
    /// plain DFT, Fig. 6).
    #[must_use]
    pub fn effective_intensity(&self, kernel: &Kernel) -> f64 {
        let base = kernel.kind.intensity();
        let ceil = kernel.kind.intensity_ceiling();
        if ceil <= base {
            return base;
        }
        let overlap = 1.0 - (-kernel.width / (12.0 * self.spec.work_capacity)).exp();
        base + (ceil - base) * overlap
    }

    /// Uncapped board power while running `kernel`, watts. Duty-averaged:
    /// the regulator (and our telemetry) averages over windows longer than
    /// launch gaps.
    #[must_use]
    pub fn uncapped_power(&self, kernel: &Kernel) -> f64 {
        let u = self.utilisation(kernel.width);
        let peak = self.spec.tdp_w * self.var.power_scale;
        self.idle_w()
            + kernel.duty * u * self.effective_intensity(kernel) * (peak - self.idle_w())
    }

    /// Effective power ceiling including the low-cap regulation overshoot
    /// (Fig. 10: only near the 100 W floor does the regulator miss).
    #[must_use]
    pub fn effective_ceiling(&self) -> f64 {
        let cap = self.power_limit_w;
        let over = self.calib.eps0 * ((self.calib.overshoot_knee_w - cap) / 50.0).max(0.0);
        cap * (1.0 + over)
    }

    /// Normalised performance of a kernel whose uncapped power is `p0`
    /// under the current cap. 1.0 when no throttling is needed.
    #[must_use]
    pub fn throttle_perf(&self, p0: f64, kind: KernelKind) -> f64 {
        let cap = self.power_limit_w;
        if p0 <= cap {
            return 1.0;
        }
        let p_base = self.idle_w() + self.calib.beta * (p0 - self.idle_w());
        let r = ((cap - p_base) / (p0 - p_base)).clamp(0.0, 1.0);
        let core_perf = (1.0 - (1.0 - r).powf(self.calib.gamma)).max(self.calib.perf_floor);
        // Kernels that do not follow the graphics clock are diluted.
        let s = kind.cap_sensitivity();
        1.0 - s + s * core_perf
    }

    /// Execute a kernel under the current power limit.
    ///
    /// Throttling stretches only the busy portion of a duty-cycled block —
    /// launch gaps are host-side and clock-independent.
    #[must_use]
    pub fn execute(&self, kernel: &Kernel) -> Executed {
        let p0 = self.uncapped_power(kernel);
        // Board-level speed variability stretches all kernels slightly.
        let base = kernel.duration_s / self.var.speed_scale;
        let perf = self.throttle_perf(p0, kernel.kind);
        let duration_s = base * (kernel.duty / perf + (1.0 - kernel.duty));
        // Overall achieved performance for reporting.
        let overall_perf = base / duration_s.max(f64::MIN_POSITIVE);
        let watts = p0.min(self.effective_ceiling()).max(self.idle_w().min(p0));
        Executed {
            duration_s,
            watts,
            perf: if kernel.duration_s == 0.0 { 1.0 } else { overall_perf },
        }
    }

    /// Execute a kernel stream starting at `t0`, returning the board's power
    /// trace and the total elapsed time.
    #[must_use]
    pub fn run_stream(&self, t0: f64, kernels: &[Kernel]) -> PowerTrace {
        let mut trace = PowerTrace::new(t0);
        for k in kernels {
            let ex = self.execute(k);
            trace.push(ex.duration_s, ex.watts);
        }
        trace
    }
}

impl Default for Gpu {
    fn default() -> Self {
        Self::nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelKind::*;

    fn hot_kernel() -> Kernel {
        // Wide tensor GEMM: effectively saturated.
        Kernel::new(TensorGemm, 2e7, 1.0)
    }

    #[test]
    fn idle_kernel_draws_idle_power() {
        let gpu = Gpu::nominal();
        let ex = gpu.execute(&Kernel::idle(1.0));
        assert!((ex.watts - gpu.idle_w()).abs() < 1e-9);
        assert_eq!(ex.perf, 1.0);
    }

    #[test]
    fn saturated_tensor_gemm_approaches_tdp() {
        let gpu = Gpu::nominal();
        let p = gpu.uncapped_power(&hot_kernel());
        assert!(p > 0.9 * gpu.spec().tdp_w, "p = {p}");
        assert!(p <= gpu.spec().tdp_w);
    }

    #[test]
    fn utilisation_saturates_monotonically() {
        let gpu = Gpu::nominal();
        let mut last = -1.0;
        for w in [0.0, 1e4, 1e5, 3e5, 1e6, 1e7] {
            let u = gpu.utilisation(w);
            assert!(u > last);
            assert!((0.0..=1.0).contains(&u));
            last = u;
        }
        assert!(gpu.utilisation(0.0) == 0.0);
        assert!(gpu.utilisation(1e8) > 0.98);
    }

    #[test]
    fn power_limit_clamps_to_device_range() {
        let mut gpu = Gpu::nominal();
        assert_eq!(gpu.set_power_limit(50.0), 100.0);
        assert_eq!(gpu.set_power_limit(500.0), 400.0);
        assert_eq!(gpu.set_power_limit(250.0), 250.0);
        gpu.reset_power_limit();
        assert_eq!(gpu.power_limit_w(), 400.0);
    }

    #[test]
    fn no_throttle_at_default_limit() {
        let gpu = Gpu::nominal();
        let ex = gpu.execute(&hot_kernel());
        assert_eq!(ex.perf, 1.0);
        assert!((ex.duration_s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn capped_power_stays_under_cap_above_floor() {
        let mut gpu = Gpu::nominal();
        for cap in [350.0, 300.0, 250.0, 200.0, 150.0] {
            gpu.set_power_limit(cap);
            let ex = gpu.execute(&hot_kernel());
            assert!(
                ex.watts <= cap + 1e-9,
                "cap {cap}: drew {} W",
                ex.watts
            );
        }
    }

    #[test]
    fn floor_cap_overshoots_slightly() {
        let mut gpu = Gpu::nominal();
        gpu.set_power_limit(100.0);
        let ex = gpu.execute(&hot_kernel());
        assert!(ex.watts > 100.0, "paper Fig. 10: error at the 100 W floor");
        assert!(ex.watts < 125.0, "but a bounded error: {}", ex.watts);
    }

    #[test]
    fn paper_band_300w_cap_is_nearly_free() {
        let mut gpu = Gpu::nominal();
        gpu.set_power_limit(300.0);
        let perf = gpu.execute(&hot_kernel()).perf;
        assert!(perf > 0.97, "Fig. 12: no visible loss at 300 W; perf = {perf}");
    }

    #[test]
    fn paper_band_200w_cap_costs_some_percent_on_hot_kernels() {
        let mut gpu = Gpu::nominal();
        gpu.set_power_limit(200.0);
        let perf = gpu.execute(&hot_kernel()).perf;
        assert!(
            (0.75..0.95).contains(&perf),
            "Fig. 12: ~9 % workload-level loss needs 10-25 % hot-kernel loss; perf = {perf}"
        );
    }

    #[test]
    fn paper_band_100w_cap_is_drastic_on_hot_kernels() {
        let mut gpu = Gpu::nominal();
        gpu.set_power_limit(100.0);
        let perf = gpu.execute(&hot_kernel()).perf;
        assert!(perf < 0.45, "Fig. 12: >60 % loss at 100 W; perf = {perf}");
    }

    #[test]
    fn cool_kernels_ignore_moderate_caps() {
        let mut gpu = Gpu::nominal();
        gpu.set_power_limit(200.0);
        let cool = Kernel::new(MemBound, 5e4, 1.0);
        let ex = gpu.execute(&cool);
        assert_eq!(ex.perf, 1.0, "power below cap → untouched");
    }

    #[test]
    fn comm_kernels_barely_slow_under_any_cap() {
        let mut gpu = Gpu::nominal();
        gpu.set_power_limit(100.0);
        let comm = Kernel::new(NcclComm, 2e7, 1.0);
        let ex = gpu.execute(&comm);
        assert!(ex.perf > 0.93, "NIC-bound work is clock-insensitive");
    }

    #[test]
    fn throttle_perf_is_monotone_in_cap() {
        let gpu0 = Gpu::nominal();
        let p0 = gpu0.uncapped_power(&hot_kernel());
        let mut last = 0.0;
        for cap in [100.0, 150.0, 200.0, 250.0, 300.0, 350.0, 400.0] {
            let mut gpu = Gpu::nominal();
            gpu.set_power_limit(cap);
            let perf = gpu.throttle_perf(p0, TensorGemm);
            assert!(perf >= last, "perf must rise with cap");
            last = perf;
        }
        assert_eq!(last, 1.0);
    }

    #[test]
    fn energy_can_drop_under_mild_cap() {
        // At 200 W the hot kernel runs ~15 % longer but at ~53 % power:
        // energy-to-solution falls (consistent with capping being an
        // energy-efficiency tool).
        let gpu = Gpu::nominal();
        let base = gpu.execute(&hot_kernel());
        let mut capped = Gpu::nominal();
        capped.set_power_limit(200.0);
        let ex = capped.execute(&hot_kernel());
        assert!(ex.duration_s * ex.watts < base.duration_s * base.watts);
    }

    #[test]
    fn run_stream_concatenates_kernels() {
        let gpu = Gpu::nominal();
        let trace = gpu.run_stream(
            10.0,
            &[
                Kernel::new(TensorGemm, 2e7, 1.0),
                Kernel::idle(0.5),
                Kernel::new(Fft3d, 1e5, 2.0),
            ],
        );
        assert!((trace.start() - 10.0).abs() < 1e-12);
        assert!((trace.duration() - 3.5).abs() < 1e-9);
        assert!(trace.max_power().unwrap() > 300.0);
    }

    #[test]
    fn variability_shifts_idle_and_speed() {
        let spec = A100Spec::default();
        let calib = ThrottleCalib::default();
        let var = GpuVariability {
            idle_offset_w: 10.0,
            power_scale: 1.0,
            speed_scale: 0.5,
        };
        let gpu = Gpu::new(spec, calib, var);
        assert!((gpu.idle_w() - (A100Spec::default().idle_w + 10.0)).abs() < 1e-12);
        let ex = gpu.execute(&Kernel::new(Gemm, 1e5, 1.0));
        assert!((ex.duration_s - 2.0).abs() < 1e-12, "half speed → double time");
    }
}
