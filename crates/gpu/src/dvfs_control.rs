//! DVFS frequency pinning — the control knob the paper chose *not* to use.
//!
//! §V: "While the DVFS method is commonly employed for its ease of use, we
//! chose to use power capping to control the device power, which is more
//! efficient and accurate [31]". This module implements the alternative
//! (`nvidia-smi -lgc`-style fixed graphics clocks) so that claim is testable
//! inside the model: at a pinned clock the *power* still varies with the
//! workload (you cannot dial in a wattage), whereas a cap regulates power
//! directly and only throttles when needed.

use crate::dvfs::DvfsCurve;
use crate::kernel::Kernel;
use crate::power::Gpu;

/// Outcome of running a kernel at a pinned clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DvfsExecuted {
    pub duration_s: f64,
    pub watts: f64,
    /// The pinned normalised clock actually applied.
    pub clock: f64,
}

/// A fixed-clock controller wrapping a board.
#[derive(Debug, Clone, PartialEq)]
pub struct DvfsControl {
    curve: DvfsCurve,
    /// Pinned normalised clock (1 = boost).
    clock: f64,
}

impl DvfsControl {
    /// Pin the clock to `clock` (normalised; clamped to the curve's range).
    #[must_use]
    pub fn pin(clock: f64) -> Self {
        let curve = DvfsCurve::a100();
        Self {
            clock: clock.clamp(curve.f_min, 1.0),
            curve,
        }
    }

    /// The applied normalised clock.
    #[must_use]
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Run `kernel` on `gpu` at the pinned clock.
    ///
    /// Power scales with the DVFS curve's dynamic fraction at the pinned
    /// clock; runtime stretches through the kind's cap sensitivity (the
    /// same clock-dependence capping exploits).
    #[must_use]
    pub fn execute(&self, gpu: &Gpu, kernel: &Kernel) -> DvfsExecuted {
        let p0 = gpu.uncapped_power(kernel);
        let idle = gpu.idle_w();
        let phi = self.curve.power_fraction(self.clock);
        let watts = idle + (p0 - idle) * phi;
        let s = kernel.kind.cap_sensitivity();
        let speed = 1.0 - s + s * self.clock;
        let base = gpu.execute(kernel).duration_s; // unthrottled baseline
        DvfsExecuted {
            duration_s: base / speed.max(1e-6),
            watts,
            clock: self.clock,
        }
    }

    /// The pinned clock that would bring a kernel of uncapped power `p0`
    /// down to `target_w` on a board with idle power `idle_w` — what an
    /// operator must compute *per workload* to emulate a cap with DVFS.
    #[must_use]
    pub fn clock_for_target(&self, p0: f64, idle_w: f64, target_w: f64) -> f64 {
        if p0 <= target_w {
            return 1.0;
        }
        let phi = ((target_w - idle_w) / (p0 - idle_w)).max(0.0);
        self.curve.clock_for_power(phi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelKind;

    fn hot() -> Kernel {
        Kernel::new(KernelKind::TensorGemm, 2e7, 1.0)
    }

    fn cool() -> Kernel {
        Kernel::new(KernelKind::Fft3d, 5e5, 1.0)
    }

    #[test]
    fn full_clock_matches_uncapped_execution() {
        let gpu = Gpu::nominal();
        let ctrl = DvfsControl::pin(1.0);
        let ex = ctrl.execute(&gpu, &hot());
        let free = gpu.execute(&hot());
        assert!((ex.duration_s - free.duration_s).abs() < 1e-12);
        assert!((ex.watts - free.watts).abs() < 1e-9);
    }

    #[test]
    fn pinned_clock_reduces_power_and_speed() {
        let gpu = Gpu::nominal();
        let ctrl = DvfsControl::pin(0.7);
        let ex = ctrl.execute(&gpu, &hot());
        let free = gpu.execute(&hot());
        assert!(ex.watts < free.watts * 0.6, "cubic power drop: {}", ex.watts);
        assert!(ex.duration_s > free.duration_s * 1.3, "linear slowdown");
    }

    #[test]
    fn clock_clamps_to_device_range() {
        assert_eq!(DvfsControl::pin(2.0).clock(), 1.0);
        let c = DvfsControl::pin(0.0);
        assert!((c.clock() - DvfsCurve::a100().f_min).abs() < 1e-12);
    }

    #[test]
    fn dvfs_power_varies_with_workload_but_caps_do_not() {
        // The paper's §V argument, reproduced: pin a clock chosen so the
        // *hot* kernel meets a 200 W target, then run a cooler kernel —
        // under DVFS its power is far below target (wasted headroom and
        // wasted speed), while a 200 W cap leaves the cooler kernel at full
        // speed and lets the hot one use exactly the target.
        let gpu = Gpu::nominal();
        let p0_hot = gpu.uncapped_power(&hot());
        let ctrl = DvfsControl::pin(
            DvfsControl::pin(1.0).clock_for_target(p0_hot, gpu.idle_w(), 200.0),
        );
        let hot_dvfs = ctrl.execute(&gpu, &hot());
        assert!((hot_dvfs.watts - 200.0).abs() < 10.0, "{}", hot_dvfs.watts);

        let cool_dvfs = ctrl.execute(&gpu, &cool());
        let mut capped = Gpu::nominal();
        capped.set_power_limit(200.0);
        let cool_capped = capped.execute(&cool());
        // Same 200 W target: DVFS slows the cool kernel; the cap does not.
        assert_eq!(cool_capped.perf, 1.0, "cap leaves sub-limit work alone");
        assert!(
            cool_dvfs.duration_s > gpu.execute(&cool()).duration_s * 1.02,
            "pinned clocks tax everything"
        );
    }

    #[test]
    fn capping_regulates_more_accurately_than_dvfs_across_a_mix() {
        // Run a mixed kernel set under both controls targeting 200 W and
        // compare worst-case deviation of *hot* kernels from the target.
        let gpu = Gpu::nominal();
        let kernels = [
            Kernel::new(KernelKind::TensorGemm, 2e7, 1.0),
            Kernel::new(KernelKind::Fft3d, 8e6, 1.0),
            Kernel::new(KernelKind::MemBound, 6e6, 1.0),
        ];
        let mut capped = Gpu::nominal();
        capped.set_power_limit(200.0);

        // One pinned clock must serve the whole mix: choose it for the mean.
        let mean_p0: f64 =
            kernels.iter().map(|k| gpu.uncapped_power(k)).sum::<f64>() / 3.0;
        let ctrl = DvfsControl::pin(
            DvfsControl::pin(1.0).clock_for_target(mean_p0, gpu.idle_w(), 200.0),
        );

        let cap_dev = kernels
            .iter()
            .map(|k| (capped.execute(k).watts - 200.0).abs())
            .fold(0.0, f64::max);
        let dvfs_dev = kernels
            .iter()
            .map(|k| (ctrl.execute(&gpu, k).watts - 200.0).abs())
            .fold(0.0, f64::max);
        assert!(
            cap_dev < dvfs_dev,
            "capping should track the target better: cap {cap_dev} vs dvfs {dvfs_dev}"
        );
    }
}
