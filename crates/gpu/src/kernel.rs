//! GPU kernel descriptions.
//!
//! The DFT workload simulator (`vpp-dft`) lowers each SCF phase to a stream
//! of [`Kernel`]s. A kernel is characterised by its *kind* (which fixes the
//! arithmetic-intensity and cap-sensitivity parameters), its *width* (how
//! much concurrent plane-wave work it carries — this is what NPLWV feeds),
//! and its full-clock *duration*.

/// Classes of GPU work with distinct power/throttle behaviour.
///
/// Intensities are fractions of the idle→TDP dynamic range reached at full
/// SM utilisation; cap sensitivity is how strongly the kernel's runtime
/// follows the graphics clock when the driver throttles (1 = fully
/// compute-bound, 0 = unaffected, e.g. NIC-bound communication).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// Dense matrix multiply on tensor cores (cuBLAS GEMM): the hottest
    /// kernels VASP runs (subspace rotation, exact exchange contractions).
    TensorGemm,
    /// Non-tensor-core level-3 BLAS.
    Gemm,
    /// Batched 3-D FFTs (cuFFT) over the plane-wave grid.
    Fft3d,
    /// Dense eigensolver / orthonormalisation steps (cuSOLVER).
    Eigensolver,
    /// Bandwidth-bound kernels: nonlocal projectors, vector updates.
    MemBound,
    /// GPU-side NCCL collective (SM-light, NVLink/NIC-bound).
    NcclComm,
    /// Host↔device transfers over PCIe.
    HostTransfer,
    /// GPU idle (host-side work, MPI waits, I/O).
    Idle,
}

impl KernelKind {
    /// Fraction of the idle→TDP dynamic range reached at full utilisation.
    #[must_use]
    pub fn intensity(self) -> f64 {
        match self {
            KernelKind::TensorGemm => 0.97,
            KernelKind::Gemm => 0.88,
            KernelKind::Fft3d => 0.62,
            KernelKind::Eigensolver => 0.66,
            KernelKind::MemBound => 0.50,
            KernelKind::NcclComm => 0.24,
            KernelKind::HostTransfer => 0.14,
            KernelKind::Idle => 0.0,
        }
    }

    /// Intensity reached when the device is *over-subscribed* (multiple
    /// streams overlapping, huge batches): bandwidth-bound kernels at full
    /// HBM tilt draw ~300 W on an A100, overlapped FFT pipelines approach
    /// TDP. The power model interpolates from [`Self::intensity`] toward
    /// this ceiling as kernel width grows far beyond the saturation scale.
    #[must_use]
    pub fn intensity_ceiling(self) -> f64 {
        match self {
            KernelKind::TensorGemm => 0.97,
            KernelKind::Gemm => 0.95,
            KernelKind::Fft3d => 0.97,
            KernelKind::Eigensolver => 0.85,
            KernelKind::MemBound => 0.72,
            other => other.intensity(),
        }
    }

    /// How strongly runtime follows the throttled graphics clock
    /// (0 = not at all). Bandwidth-bound work (cuFFT, projectors) runs at
    /// HBM speed and barely notices core-clock throttling — this is why
    /// RMM-DIIS workloads tolerate even the 100 W floor (paper Fig. 12),
    /// while tensor-core exchange/χ₀ GEMMs track the clock one-to-one.
    #[must_use]
    pub fn cap_sensitivity(self) -> f64 {
        match self {
            KernelKind::TensorGemm => 1.0,
            KernelKind::Gemm => 0.90,
            KernelKind::Fft3d => 0.30,
            KernelKind::Eigensolver => 0.50,
            KernelKind::MemBound => 0.25,
            KernelKind::NcclComm => 0.05,
            KernelKind::HostTransfer => 0.0,
            KernelKind::Idle => 0.0,
        }
    }

    /// All kinds, for exhaustive tests and benches.
    #[must_use]
    pub fn all() -> [KernelKind; 8] {
        [
            KernelKind::TensorGemm,
            KernelKind::Gemm,
            KernelKind::Fft3d,
            KernelKind::Eigensolver,
            KernelKind::MemBound,
            KernelKind::NcclComm,
            KernelKind::HostTransfer,
            KernelKind::Idle,
        ]
    }
}

/// One schedulable unit of GPU work.
///
/// `duty` captures launch-overhead duty cycling: a *block* of many short
/// device kernels separated by launch/synchronisation gaps is modelled as
/// one `Kernel` whose GPU is busy only `duty` of the time. NVIDIA's power
/// regulator averages over ~100 ms windows — longer than the gaps — so both
/// power draw and cap enforcement see the duty-averaged load. This is what
/// lets small workloads (GaAsBi-64, PdO2) draw little power and sail under
/// even a 100 W cap (paper Figs. 10, 12).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Kernel {
    pub kind: KernelKind,
    /// Concurrent work units (≈ plane-wave coefficients touched in flight).
    /// Drives SM utilisation; see [`crate::A100Spec::work_capacity`].
    pub width: f64,
    /// Duration at full boost clock with no power cap, seconds.
    pub duration_s: f64,
    /// Fraction of `duration_s` the device is actually executing (the rest
    /// is launch latency / host synchronisation). In `[0, 1]`.
    pub duty: f64,
}

impl Kernel {
    /// Construct a fully-busy kernel (`duty = 1`).
    ///
    /// # Panics
    /// If `width` is negative or `duration_s` is negative / non-finite.
    #[must_use]
    pub fn new(kind: KernelKind, width: f64, duration_s: f64) -> Self {
        Self::with_duty(kind, width, duration_s, 1.0)
    }

    /// Construct a kernel block with an explicit duty cycle.
    ///
    /// # Panics
    /// On non-finite or out-of-range parameters.
    #[must_use]
    pub fn with_duty(kind: KernelKind, width: f64, duration_s: f64, duty: f64) -> Self {
        assert!(width >= 0.0 && width.is_finite(), "bad width {width}");
        assert!(
            duration_s >= 0.0 && duration_s.is_finite(),
            "bad duration {duration_s}"
        );
        assert!((0.0..=1.0).contains(&duty), "bad duty {duty}");
        Self {
            kind,
            width,
            duration_s,
            duty,
        }
    }

    /// An idle gap of the given length.
    #[must_use]
    pub fn idle(duration_s: f64) -> Self {
        Self::new(KernelKind::Idle, 0.0, duration_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intensities_are_ordered_by_heat() {
        assert!(KernelKind::TensorGemm.intensity() > KernelKind::Fft3d.intensity());
        assert!(KernelKind::Fft3d.intensity() > KernelKind::MemBound.intensity());
        assert!(KernelKind::MemBound.intensity() > KernelKind::NcclComm.intensity());
        assert_eq!(KernelKind::Idle.intensity(), 0.0);
    }

    #[test]
    fn all_intensities_and_sensitivities_in_unit_range() {
        for k in KernelKind::all() {
            assert!((0.0..=1.0).contains(&k.intensity()));
            assert!((0.0..=1.0).contains(&k.cap_sensitivity()));
        }
    }

    #[test]
    fn comm_is_cap_insensitive() {
        assert!(KernelKind::NcclComm.cap_sensitivity() < 0.1);
        assert_eq!(KernelKind::Idle.cap_sensitivity(), 0.0);
    }

    #[test]
    fn bandwidth_bound_kernels_are_weakly_cap_sensitive() {
        assert!(KernelKind::Fft3d.cap_sensitivity() < 0.5);
        assert!(KernelKind::MemBound.cap_sensitivity() < 0.5);
        assert_eq!(KernelKind::TensorGemm.cap_sensitivity(), 1.0);
    }

    #[test]
    fn ceilings_dominate_intensities() {
        for k in KernelKind::all() {
            assert!(k.intensity_ceiling() >= k.intensity(), "{k:?}");
            assert!(k.intensity_ceiling() <= 1.0);
        }
    }

    #[test]
    fn idle_constructor() {
        let k = Kernel::idle(2.0);
        assert_eq!(k.kind, KernelKind::Idle);
        assert_eq!(k.width, 0.0);
        assert_eq!(k.duration_s, 2.0);
        assert_eq!(k.duty, 1.0);
    }

    #[test]
    fn with_duty_stores_duty() {
        let k = Kernel::with_duty(KernelKind::Fft3d, 1e5, 1.0, 0.5);
        assert_eq!(k.duty, 0.5);
    }

    #[test]
    #[should_panic(expected = "bad duty")]
    fn out_of_range_duty_panics() {
        let _ = Kernel::with_duty(KernelKind::Fft3d, 1e5, 1.0, 1.5);
    }

    #[test]
    #[should_panic(expected = "bad width")]
    fn negative_width_panics() {
        let _ = Kernel::new(KernelKind::Gemm, -1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "bad duration")]
    fn nan_duration_panics() {
        let _ = Kernel::new(KernelKind::Gemm, 1.0, f64::NAN);
    }
}
