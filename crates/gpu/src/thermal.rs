//! Board thermal dynamics.
//!
//! Power capping (§V) is one of two mechanisms that slow an A100 down; the
//! other is thermal throttling when the die crosses its slowdown
//! temperature. Perlmutter's GPU nodes are liquid-cooled, so the paper
//! never hits the thermal limit — this model exists to *verify* that claim
//! for our simulated workloads (none of the reproduced runs should ever
//! throttle thermally) and to support what-if studies with weaker cooling.
//!
//! First-order RC model: `C·dT/dt = P_dyn − (T − T_coolant)/R_th`.

use vpp_sim::PowerTrace;

/// Thermal parameters of a cooled A100 board.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalModel {
    /// Coolant/ambient temperature, °C.
    pub coolant_c: f64,
    /// Thermal resistance junction→coolant, °C/W.
    pub r_th_c_per_w: f64,
    /// Heat capacity of the board assembly, J/°C.
    pub capacity_j_per_c: f64,
    /// Die temperature where the driver starts thermal throttling, °C.
    pub slowdown_c: f64,
}

impl ThermalModel {
    /// Perlmutter's direct liquid cooling: low thermal resistance, cool
    /// loop water.
    #[must_use]
    pub fn liquid_cooled() -> Self {
        Self {
            coolant_c: 32.0,
            r_th_c_per_w: 0.085,
            capacity_j_per_c: 1100.0,
            slowdown_c: 83.0,
        }
    }

    /// An air-cooled comparison point (PCIe-style chassis).
    #[must_use]
    pub fn air_cooled() -> Self {
        Self {
            coolant_c: 38.0,
            r_th_c_per_w: 0.17,
            capacity_j_per_c: 1100.0,
            slowdown_c: 83.0,
        }
    }

    /// Steady-state die temperature at constant power, °C.
    #[must_use]
    pub fn steady_state_c(&self, power_w: f64) -> f64 {
        self.coolant_c + power_w * self.r_th_c_per_w
    }

    /// Thermal time constant, seconds.
    #[must_use]
    pub fn time_constant_s(&self) -> f64 {
        self.r_th_c_per_w * self.capacity_j_per_c
    }

    /// Integrate the die temperature over a power trace, sampled every
    /// `dt_s`, starting from coolant temperature (cold start).
    ///
    /// # Panics
    /// If `dt_s` is not positive.
    #[must_use]
    pub fn temperature_series(&self, trace: &PowerTrace, dt_s: f64) -> Vec<(f64, f64)> {
        assert!(dt_s > 0.0, "bad step {dt_s}");
        let tau = self.time_constant_s();
        let mut t_die = self.coolant_c;
        let mut out = Vec::new();
        let mut t = trace.start();
        while t < trace.end() {
            let p = trace.mean_power(t, t + dt_s);
            let target = self.steady_state_c(p);
            // Exact solution of the linear ODE over the step.
            let alpha = (-dt_s / tau).exp();
            t_die = target + (t_die - target) * alpha;
            t += dt_s;
            out.push((t, t_die));
        }
        out
    }

    /// Peak die temperature over a trace.
    #[must_use]
    pub fn peak_temperature_c(&self, trace: &PowerTrace) -> f64 {
        self.temperature_series(trace, 1.0)
            .into_iter()
            .map(|(_, t)| t)
            .fold(self.coolant_c, f64::max)
    }

    /// Fraction of the run spent above the slowdown temperature (0 under
    /// adequate cooling — asserted for every reproduced workload).
    #[must_use]
    pub fn throttle_fraction(&self, trace: &PowerTrace) -> f64 {
        let series = self.temperature_series(trace, 1.0);
        if series.is_empty() {
            return 0.0;
        }
        series.iter().filter(|&&(_, t)| t >= self.slowdown_c).count() as f64
            / series.len() as f64
    }
}

impl Default for ThermalModel {
    fn default() -> Self {
        Self::liquid_cooled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_scales_with_power() {
        let m = ThermalModel::liquid_cooled();
        assert_eq!(m.steady_state_c(0.0), 32.0);
        let at_tdp = m.steady_state_c(400.0);
        assert!((at_tdp - 66.0).abs() < 1.0, "400 W → ~66 °C: {at_tdp}");
        assert!(at_tdp < m.slowdown_c, "liquid cooling holds TDP below slowdown");
    }

    #[test]
    fn air_cooling_is_hotter() {
        let liquid = ThermalModel::liquid_cooled();
        let air = ThermalModel::air_cooled();
        assert!(air.steady_state_c(300.0) > liquid.steady_state_c(300.0));
        // Air cooling at sustained TDP would throttle.
        assert!(air.steady_state_c(400.0) > air.slowdown_c);
    }

    #[test]
    fn temperature_relaxes_exponentially() {
        let m = ThermalModel::liquid_cooled();
        let trace = PowerTrace::from_segments(0.0, [(1000.0, 400.0)]);
        let series = m.temperature_series(&trace, 1.0);
        let tau = m.time_constant_s();
        // After one time constant, ~63% of the way to steady state.
        let idx = tau.round() as usize - 1;
        let expect = 32.0 + 0.632 * (m.steady_state_c(400.0) - 32.0);
        assert!(
            (series[idx].1 - expect).abs() < 1.5,
            "T(τ) = {} vs {expect}",
            series[idx].1
        );
        // And converges by 5τ.
        let end = series.last().unwrap().1;
        assert!((end - m.steady_state_c(400.0)).abs() < 0.1);
    }

    #[test]
    fn bursts_are_smoothed_by_thermal_mass() {
        let m = ThermalModel::liquid_cooled();
        // 2 s bursts at 400 W between 2 s at 100 W.
        let mut trace = PowerTrace::new(0.0);
        for _ in 0..200 {
            trace.push(2.0, 400.0);
            trace.push(2.0, 100.0);
        }
        let peak = m.peak_temperature_c(&trace);
        let mean_ss = m.steady_state_c(250.0);
        assert!(
            (peak - mean_ss).abs() < 2.0,
            "fast bursts should average thermally: peak {peak} vs {mean_ss}"
        );
    }

    #[test]
    fn no_thermal_throttling_under_liquid_cooling_at_tdp() {
        let m = ThermalModel::liquid_cooled();
        let trace = PowerTrace::from_segments(0.0, [(3600.0, 400.0)]);
        assert_eq!(m.throttle_fraction(&trace), 0.0);
    }

    #[test]
    fn air_cooling_at_tdp_eventually_throttles() {
        let m = ThermalModel::air_cooled();
        let trace = PowerTrace::from_segments(0.0, [(3600.0, 400.0)]);
        assert!(m.throttle_fraction(&trace) > 0.5);
    }

    #[test]
    fn empty_trace_is_cold() {
        let m = ThermalModel::liquid_cooled();
        let trace = PowerTrace::new(0.0);
        assert_eq!(m.peak_temperature_c(&trace), m.coolant_c);
        assert_eq!(m.throttle_fraction(&trace), 0.0);
    }

    #[test]
    #[should_panic(expected = "bad step")]
    fn zero_step_panics() {
        let trace = PowerTrace::from_segments(0.0, [(1.0, 100.0)]);
        let _ = ThermalModel::liquid_cooled().temperature_series(&trace, 0.0);
    }
}
