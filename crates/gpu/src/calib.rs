//! Device specification and calibration constants.
//!
//! Every number here is either published in the paper (§II-A, §V-A) or
//! calibrated so that the end-to-end reproduction lands in the paper's
//! reported bands (see `DESIGN.md` §3.1 and `EXPERIMENTS.md`).

/// Static specification of an NVIDIA A100-40GB SXM board as deployed in
/// Perlmutter GPU nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct A100Spec {
    /// Thermal design power, watts. Paper §II-A: 400 W.
    pub tdp_w: f64,
    /// Typical idle board power, watts.
    pub idle_w: f64,
    /// Lowest settable power limit, watts. Paper §V-A: 100 W.
    pub min_cap_w: f64,
    /// Highest settable power limit (the default), watts. Paper §V-A: 400 W.
    pub max_cap_w: f64,
    /// Boost clock, MHz (informational; the throttle model is normalised).
    pub boost_clock_mhz: f64,
    /// Minimum graphics clock, MHz.
    pub min_clock_mhz: f64,
    /// Streaming multiprocessor count.
    pub sm_count: u32,
    /// HBM2e bandwidth, GB/s.
    pub hbm_bw_gbs: f64,
    /// Saturation scale for concurrent plane-wave work, in "work units"
    /// (see [`crate::power::Gpu::utilisation`]). A kernel carrying `width`
    /// work units drives SM utilisation `1 - exp(-width / work_capacity)`.
    pub work_capacity: f64,
}

impl A100Spec {
    /// The A100-40GB as installed in Perlmutter GPU nodes.
    #[must_use]
    pub fn perlmutter() -> Self {
        Self {
            tdp_w: 400.0,
            idle_w: 52.0,
            min_cap_w: 100.0,
            max_cap_w: 400.0,
            boost_clock_mhz: 1410.0,
            min_clock_mhz: 210.0,
            sm_count: 108,
            hbm_bw_gbs: 1555.0,
            work_capacity: 1.2e6,
        }
    }
}

impl A100Spec {
    /// The 80 GB HBM2e variant (present on 256 Perlmutter nodes the study
    /// excludes, §II-A): same 400 W SXM power envelope, more/faster memory.
    #[must_use]
    pub fn a100_80gb() -> Self {
        Self {
            hbm_bw_gbs: 2039.0,
            work_capacity: 1.4e6,
            ..Self::perlmutter()
        }
    }

    /// An H100-SXM-like *what-if* device for §I's architecture-transition
    /// question: 700 W envelope, wider cap range, roughly doubled
    /// saturation capacity. The throttle calibration carries over — the
    /// point of the what-if is how the *policy* (e.g. the 50 %-TDP rule)
    /// transfers, not a validated H100 model.
    #[must_use]
    pub fn h100_like() -> Self {
        Self {
            tdp_w: 700.0,
            idle_w: 70.0,
            min_cap_w: 200.0,
            max_cap_w: 700.0,
            boost_clock_mhz: 1980.0,
            min_clock_mhz: 345.0,
            sm_count: 132,
            hbm_bw_gbs: 3350.0,
            work_capacity: 2.6e6,
        }
    }
}

impl Default for A100Spec {
    fn default() -> Self {
        Self::perlmutter()
    }
}

/// Calibrated power-cap response constants (see `DESIGN.md` §3.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThrottleCalib {
    /// Exponent of the concave performance response
    /// `perf = 1 - (1 - r)^gamma` where
    /// `r = (cap - p_base) / (p0 - p_base)`. Calibrated to reproduce the
    /// paper's knee: ~0 % loss at 300 W, ~9 % at 200 W, >60 % at 100 W for
    /// the power-hungry benchmarks (Fig. 12).
    pub gamma: f64,
    /// Non-throttleable share of a kernel's dynamic power (HBM refresh,
    /// fixed-function units): `p_base = idle + beta * (p0 - idle)`.
    pub beta: f64,
    /// Regulation overshoot at very low caps (Fig. 10: bars above the line
    /// only at the 100 W floor). The effective ceiling is
    /// `cap * (1 + eps0 * max(0, (overshoot_knee_w - cap)) / 50)`.
    pub eps0: f64,
    /// Cap below which regulation error appears, watts.
    pub overshoot_knee_w: f64,
    /// Performance floor: throttling never slows a kernel by more than
    /// `1 / perf_floor`.
    pub perf_floor: f64,
}

impl ThrottleCalib {
    /// Calibration used throughout the reproduction.
    #[must_use]
    pub fn calibrated() -> Self {
        Self {
            gamma: 4.5,
            beta: 0.08,
            eps0: 0.12,
            overshoot_knee_w: 150.0,
            perf_floor: 0.05,
        }
    }
}

impl Default for ThrottleCalib {
    fn default() -> Self {
        Self::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perlmutter_spec_matches_paper() {
        let s = A100Spec::perlmutter();
        assert_eq!(s.tdp_w, 400.0, "paper §II-A: 400 W per GPU");
        assert_eq!(s.min_cap_w, 100.0, "paper §V-A: cap range 100-400 W");
        assert_eq!(s.max_cap_w, 400.0);
        assert!(s.idle_w > 0.0 && s.idle_w < 100.0);
    }

    #[test]
    fn variant_specs_are_consistent() {
        let v80 = A100Spec::a100_80gb();
        assert_eq!(v80.tdp_w, 400.0);
        assert!(v80.hbm_bw_gbs > A100Spec::perlmutter().hbm_bw_gbs);
        let h100 = A100Spec::h100_like();
        assert!(h100.tdp_w > 1.5 * v80.tdp_w);
        assert!(h100.min_cap_w < h100.max_cap_w);
        assert_eq!(h100.max_cap_w, h100.tdp_w);
    }

    #[test]
    fn calib_values_are_sane() {
        let c = ThrottleCalib::calibrated();
        assert!(c.gamma > 1.0, "response must be concave");
        assert!((0.0..1.0).contains(&c.beta));
        assert!(c.perf_floor > 0.0 && c.perf_floor < 1.0);
    }
}
