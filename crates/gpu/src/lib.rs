//! NVIDIA A100 GPU model.
//!
//! The paper measures how VASP's GPU power responds to workload shape and to
//! `nvidia-smi` power caps on A100-40GB parts (§II, §V). This crate models
//! the device at the level those measurements depend on:
//!
//! * a **power model** mapping kernel utilisation and arithmetic intensity to
//!   instantaneous board power (idle floor → TDP),
//! * a **DVFS curve** (voltage/frequency with a voltage floor) used both for
//!   the physically-derived throttle response and the ablation benches,
//! * a **power-capping response** calibrated against the behaviour the paper
//!   reports: 300 W caps are free, 200 W caps cost ≈9 % on power-hungry
//!   workloads, 100 W caps are catastrophic for them, and at the 100 W floor
//!   the regulator visibly overshoots (Fig. 10),
//! * **manufacturing variability** between individual boards (§III-B.2).
//!
//! The calibration constants live in [`calib`] and are asserted against the
//! paper's published numbers by this crate's tests and by the workspace-level
//! integration tests.

pub mod calib;
pub mod dvfs;
pub mod dvfs_control;
pub mod kernel;
pub mod power;
pub mod thermal;
pub mod variability;

pub use calib::A100Spec;
pub use dvfs::DvfsCurve;
pub use dvfs_control::{DvfsControl, DvfsExecuted};
pub use kernel::{Kernel, KernelKind};
pub use power::{Executed, Gpu};
pub use thermal::ThermalModel;
pub use variability::GpuVariability;
