//! Manufacturing variability between boards.
//!
//! §III-B.2 of the paper: identical DGEMM/STREAM runs show per-node power
//! differences, and idle power across 16 sampled nodes varied by up to
//! 100 W (410–510 W per node, i.e. ±~12 W per GPU plus host spread). The
//! paper's protocol runs DGEMM/Stream before VASP precisely to screen this
//! variability; we model it so the protocol has something to screen.

use vpp_sim::Rng;

/// Per-board deviations from the nominal spec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuVariability {
    /// Additive idle power offset, watts.
    pub idle_offset_w: f64,
    /// Multiplicative scale on the dynamic power range (silicon efficiency).
    pub power_scale: f64,
    /// Multiplicative scale on execution speed (binning/thermals).
    pub speed_scale: f64,
}

impl GpuVariability {
    /// A board exactly at spec.
    #[must_use]
    pub fn nominal() -> Self {
        Self {
            idle_offset_w: 0.0,
            power_scale: 1.0,
            speed_scale: 1.0,
        }
    }

    /// Draw a board from the fleet distribution.
    ///
    /// Idle offsets of ±12 W (clamped ±20 W) reproduce the observed per-node
    /// idle spread once four GPUs and the host are combined; power and speed
    /// scales are tight (±1.5 % / ±1 %) as the paper reports consistent
    /// performance despite visible power differences. A common silicon
    /// "leakage quality" factor correlates idle and dynamic power — leakier
    /// parts draw more in *every* phase, which is why Fig. 1's node offsets
    /// are consistent across DGEMM, STREAM, idle, and VASP.
    #[must_use]
    pub fn sample(rng: &mut Rng) -> Self {
        let quality = rng.normal_clamped(0.0, 1.0, -2.5, 2.5);
        Self::sample_with_quality(rng, quality)
    }

    /// Draw a board sharing a node-level `quality` bias (boards on one
    /// node share a power-delivery/cooling environment, so Fig. 1's node
    /// offsets persist across phases).
    #[must_use]
    pub fn sample_with_quality(rng: &mut Rng, quality: f64) -> Self {
        let idle_resid = rng.normal_clamped(0.0, 0.4, -1.0, 1.0);
        let power_resid = rng.normal_clamped(0.0, 0.3, -1.0, 1.0);
        Self {
            idle_offset_w: (6.0 * (quality + idle_resid)).clamp(-20.0, 20.0),
            power_scale: (1.0 + 0.013 * (quality + power_resid)).clamp(0.95, 1.05),
            speed_scale: rng.normal_clamped(1.0, 0.01, 0.97, 1.03),
        }
    }
}

impl Default for GpuVariability {
    fn default() -> Self {
        Self::nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_is_identity() {
        let v = GpuVariability::nominal();
        assert_eq!(v.idle_offset_w, 0.0);
        assert_eq!(v.power_scale, 1.0);
        assert_eq!(v.speed_scale, 1.0);
    }

    #[test]
    fn samples_are_deterministic_per_seed() {
        let a = GpuVariability::sample(&mut Rng::new(9));
        let b = GpuVariability::sample(&mut Rng::new(9));
        assert_eq!(a, b);
    }

    #[test]
    fn samples_stay_in_bounds() {
        let mut rng = Rng::new(1);
        for _ in 0..10_000 {
            let v = GpuVariability::sample(&mut rng);
            assert!(v.idle_offset_w.abs() <= 20.0);
            assert!((0.95..=1.05).contains(&v.power_scale));
            assert!((0.97..=1.03).contains(&v.speed_scale));
        }
    }

    #[test]
    fn fleet_spread_matches_paper_scale() {
        // Four GPUs' idle offsets should commonly spread node idle power by
        // tens of watts (paper: up to ~100 W per node across the fleet,
        // which includes host-side spread too).
        let mut rng = Rng::new(2);
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for _ in 0..64 {
            let node_offset: f64 = (0..4)
                .map(|_| GpuVariability::sample(&mut rng).idle_offset_w)
                .sum();
            min = min.min(node_offset);
            max = max.max(node_offset);
        }
        assert!(max - min > 20.0, "fleet spread too small: {}", max - min);
        assert!(max - min < 110.0, "fleet spread too large: {}", max - min);
    }
}
