//! Differential equivalence: the calendar queue versus the retained
//! `BinaryHeap` reference under random schedule/next/cancel interleavings.
//!
//! The determinism contract says the two engines are observationally
//! identical: the same sequence of operations yields the same `(time,
//! payload)` delivery sequence, including FIFO order within equal
//! timestamps and clamping of timestamps inside the 1e-12 late tolerance.

use vpp_sim::des::reference::HeapQueue;
use vpp_sim::EventQueue;
use vpp_substrate::prop::usize_in;
use vpp_substrate::properties;

properties! {
    fn calendar_matches_heap_under_random_interleavings(rng) {
        let mut cal = EventQueue::new();
        let mut heap = HeapQueue::new();
        // Live events as (calendar id, heap seq, payload).
        let mut live: Vec<(vpp_sim::EventId, u64, u32)> = Vec::new();
        let mut payload: u32 = 0;
        let span = rng.uniform(1.0, 1e6);
        let ops = usize_in(rng, 10, 400);
        for _ in 0..ops {
            match rng.index(8) {
                // Schedule dominates so queues actually fill up.
                0..=3 => {
                    let t = match rng.index(5) {
                        // Duplicate a live timestamp to force FIFO ties.
                        0 if !live.is_empty() => {
                            let probe = live[rng.index(live.len())].2;
                            // Re-use a time drawn the same way both sides
                            // saw it: derive from payload deterministically.
                            cal.now() + (f64::from(probe % 97) / 97.0) * span
                        }
                        // Exercise the 1e-12 late-clamp path.
                        1 => cal.now() - 1e-13,
                        _ => cal.now() + rng.uniform(0.0, span),
                    };
                    let id = cal.schedule(t, payload);
                    let seq = heap.schedule(t, payload);
                    live.push((id, seq, payload));
                    payload += 1;
                }
                4..=5 => {
                    let got_cal = cal.next();
                    let got_heap = heap.next();
                    assert_eq!(got_cal, got_heap, "delivery diverged");
                    assert_eq!(cal.now(), heap.now(), "clocks diverged");
                    if let Some((_, p)) = got_cal {
                        let at = live.iter().position(|e| e.2 == p).unwrap();
                        live.swap_remove(at);
                    }
                }
                6 if !live.is_empty() => {
                    let (id, seq, p) = live.swap_remove(rng.index(live.len()));
                    assert_eq!(cal.cancel(id), Some(p));
                    assert!(heap.cancel(seq));
                }
                _ => {
                    // Stale-handle probes must be no-ops on both sides.
                    if payload > 0 {
                        let seq = rng.index(payload as usize) as u64;
                        let live_seq = live.iter().any(|e| e.1 == seq);
                        if !live_seq {
                            assert!(!heap.cancel(seq));
                        }
                    }
                }
            }
            assert_eq!(cal.len(), heap.len(), "lengths diverged");
        }
        // Drain the remainder in lockstep.
        loop {
            let got_cal = cal.next();
            assert_eq!(got_cal, heap.next(), "drain diverged");
            assert_eq!(cal.now(), heap.now());
            if got_cal.is_none() {
                break;
            }
        }
        assert!(cal.is_empty() && heap.is_empty());
    }

    fn same_timestamp_bursts_drain_fifo_on_both_engines(rng) {
        let mut cal = EventQueue::new();
        let mut heap = HeapQueue::new();
        let bursts = usize_in(rng, 1, 20);
        let mut payload = 0u32;
        let mut t = 0.0;
        for _ in 0..bursts {
            t += rng.uniform(0.0, 10.0);
            for _ in 0..usize_in(rng, 1, 30) {
                cal.schedule(t, payload);
                heap.schedule(t, payload);
                payload += 1;
            }
        }
        let mut last = (f64::NEG_INFINITY, 0u32);
        loop {
            match (cal.next(), heap.next()) {
                (None, None) => break,
                (a, b) => {
                    assert_eq!(a, b);
                    let (at, ap) = a.unwrap();
                    // Global order: time ascending, payload ascending
                    // within a timestamp (payloads are issued in order).
                    assert!(at > last.0 || (at == last.0 && ap > last.1));
                    last = (at, ap);
                }
            }
        }
    }
}
