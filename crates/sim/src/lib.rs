//! Discrete-event simulation substrate for the VASP power-profile reproduction.
//!
//! This crate provides the primitives everything else is built on:
//!
//! * [`PowerTrace`] — a piecewise-constant power signal in watts over
//!   simulated seconds. All hardware models emit these; the telemetry and
//!   statistics layers consume them.
//! * [`EventQueue`] — a minimal discrete-event engine used by the cluster
//!   executor to interleave compute and communication across ranks.
//! * [`Rng`] — a small, fully deterministic SplitMix64-based random number
//!   generator so that every experiment is reproducible bit-for-bit across
//!   platforms and library versions (the paper's protocol repeats each run
//!   five times; we need stable streams per repeat).
//!
//! Times are `f64` seconds from an arbitrary epoch; powers are `f64` watts;
//! energies are joules.

pub mod des;
pub mod trace;
pub mod units;

/// Deterministic SplitMix64 RNG, hosted by `vpp-substrate` (the layer
/// below) and re-exported here so every historical `vpp_sim::Rng` /
/// `vpp_sim::rng` path keeps working.
pub use vpp_substrate::rng;

pub use des::{EventId, EventQueue};
pub use rng::Rng;
pub use trace::{PowerTrace, Segment};
