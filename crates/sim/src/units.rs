//! Unit helpers. The convention throughout the workspace is SI base units:
//! seconds, watts, joules. These helpers exist for readable conversions at
//! reporting boundaries (the paper reports energies in megajoules).

/// Joules → megajoules.
#[must_use]
pub fn joules_to_mj(j: f64) -> f64 {
    j * 1e-6
}

/// Megajoules → joules.
#[must_use]
pub fn mj_to_joules(mj: f64) -> f64 {
    mj * 1e6
}

/// Joules → kilowatt-hours.
#[must_use]
pub fn joules_to_kwh(j: f64) -> f64 {
    j / 3.6e6
}

/// Seconds → a compact human-readable `h:mm:ss` string.
#[must_use]
pub fn format_hms(seconds: f64) -> String {
    let total = seconds.max(0.0).round() as u64;
    let h = total / 3600;
    let m = (total % 3600) / 60;
    let s = total % 60;
    format!("{h}:{m:02}:{s:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mj_round_trip() {
        assert_eq!(joules_to_mj(2.5e6), 2.5);
        assert_eq!(mj_to_joules(joules_to_mj(123456.0)), 123456.0);
    }

    #[test]
    fn kwh_conversion() {
        assert!((joules_to_kwh(3.6e6) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hms_formatting() {
        assert_eq!(format_hms(0.0), "0:00:00");
        assert_eq!(format_hms(61.0), "0:01:01");
        assert_eq!(format_hms(3661.4), "1:01:01");
        assert_eq!(format_hms(-5.0), "0:00:00");
    }
}
