//! A discrete-event engine built on a calendar (bucket) queue.
//!
//! The cluster executor and the power-aware scheduler use this queue to
//! interleave per-rank compute segments, collective communication,
//! telemetry events and job finishes in global time order. Events scheduled
//! for the same instant are delivered in FIFO order (a monotone sequence
//! number breaks ties), which keeps multi-rank barriers and admission
//! decisions deterministic.
//!
//! ## Implementation
//!
//! [`EventQueue`] is a two-level calendar — a *ladder queue* (Tang & Goh
//! 2005), the cache-friendly descendant of Brown's calendar queue — tuned
//! for campaign scale (10⁶ pending events). The structure exploits the one
//! asymmetry a DES offers: an event is touched **once** when scheduled and
//! once when delivered, so nothing needs to be kept globally sorted in
//! between. Work is deferred until a time region comes due and then done
//! in cache-sized sequential batches:
//!
//! * **Top** — every far-future event is appended *unsorted* to one flat
//!   array: an O(1) push with a single predictable cache line touch, where
//!   a binary heap pays ~log₂(n) dependent misses sifting through 10⁶
//!   scattered entries.
//! * **Rungs** — when the top comes due it is scattered by day index into
//!   a rung of [`RUNG_DAYS`] bucket arrays (a radix partition pass over a
//!   small set of hot tails). A day holding more than [`SPAWN_THRESH`]
//!   entries is re-scattered into a deeper, finer-grained rung, so bucket
//!   sizing adapts to clustered timestamps without any global resize or
//!   width heuristic. Day indices are a monotone function of time (one
//!   multiply), so inter-day order is exact by construction.
//! * **Bottom** — the earliest remaining day is sorted once by
//!   `(time, seq)` and becomes the delivery run: pops are an index
//!   increment off a small in-cache array, with the next payload slots
//!   prefetched a few deliveries ahead.
//! * **Cancellation is O(1) and lazy.** Payloads live in a generational
//!   slab ([`EventId`] = slot index + generation); `cancel` takes the
//!   payload and bumps the generation, leaving the calendar entry behind
//!   as a tombstone that delivery skips on a generation mismatch. `len`
//!   stays exact through a live counter.
//!
//! Amortised cost per event is O(1) scatter/sort work touching memory
//! almost sequentially; the worst adversarial distributions degrade to the
//! sort path (a timestamp burst simply becomes one larger sorted run).
//!
//! The previous `BinaryHeap` engine survives as [`reference::HeapQueue`]
//! and must stay observationally identical — the `des_equivalence`
//! property suite drives both under random schedule/next/cancel
//! interleavings and demands the same `(time, seq)` delivery sequence.

use std::cmp::Ordering;

/// Handle to a scheduled event, returned by [`EventQueue::schedule`].
///
/// The id is *generational*: once the event is delivered, cancelled or
/// rescheduled, the id goes stale and later [`EventQueue::cancel`] /
/// [`EventQueue::reschedule`] calls with it return `None` instead of
/// touching whichever event re-used the slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId {
    index: u32,
    gen: u32,
}

/// Payload slot. The generation stamps every calendar entry pointing here;
/// a mismatch marks the entry as a cancelled/rescheduled tombstone.
struct Slot<E> {
    gen: u32,
    event: Option<E>,
}

/// One calendar entry: the ordering key, the slab index and the slot
/// generation it was issued under. Payloads stay in the slab so entry
/// moves are payload-size independent.
#[derive(Clone, Copy)]
struct Entry {
    time: f64,
    seq: u64,
    index: u32,
    gen: u32,
}

fn entry_cmp(a: &Entry, b: &Entry) -> Ordering {
    a.time.total_cmp(&b.time).then(a.seq.cmp(&b.seq))
}

/// Days per rung. A scatter pass keeps this many bucket tails hot, so it
/// should stay well inside L1/L2 reach.
const RUNG_DAYS: usize = 128;

/// A due day larger than this is re-scattered into a deeper rung instead
/// of being sorted directly; below it, a single `sort_unstable` of an
/// in-cache array beats further partitioning.
const SPAWN_THRESH: usize = 512;

/// One ladder rung: [`RUNG_DAYS`] unsorted day buckets covering
/// `[start, start + RUNG_DAYS/inv_width)`. Days below `cur` have already
/// been migrated toward the bottom.
struct Rung {
    start: f64,
    /// `RUNG_DAYS / span`: day index is one multiply, and because rounded
    /// multiplication is monotone, `day(t)` ordering is exact.
    inv_width: f64,
    /// Next day to migrate; `days[..cur]` are spent.
    cur: usize,
    /// Entries (live + tombstones) in `days[cur..]`; emptiness guard.
    remaining: usize,
    days: Vec<Vec<Entry>>,
}

impl Rung {
    /// Day index of `t`, clamped into the rung. Monotone in `t`.
    fn day(&self, t: f64) -> usize {
        let off = t - self.start;
        if off <= 0.0 {
            return 0;
        }
        ((off * self.inv_width) as usize).min(RUNG_DAYS - 1)
    }
}

/// Prefetch the payload slot of an upcoming delivery into L1. Advisory
/// only: a no-op on non-x86_64 targets.
#[inline(always)]
fn prefetch_slot<E>(slots: &[Slot<E>], index: u32) {
    #[cfg(target_arch = "x86_64")]
    if let Some(s) = slots.get(index as usize) {
        // Safety: prefetch has no memory effects; the pointer is derived
        // from a live borrow and never dereferenced architecturally.
        unsafe {
            core::arch::x86_64::_mm_prefetch(
                std::ptr::from_ref(s).cast::<i8>(),
                core::arch::x86_64::_MM_HINT_T0,
            );
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (slots, index);
    }
}

/// Earliest-first event queue with a simulation clock.
pub struct EventQueue<E> {
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    /// The current delivery run, sorted by `(time, seq)`; the front is
    /// `bottom[bottom_at]` (pops advance the index, no memmove).
    bottom: Vec<Entry>,
    bottom_at: usize,
    /// Outermost (widest span, latest times) first; `last()` is the rung
    /// feeding the bottom.
    rungs: Vec<Rung>,
    /// Unsorted far-future events (`time >= top_start`).
    top: Vec<Entry>,
    top_start: f64,
    top_lo: f64,
    top_hi: f64,
    /// Recycled day/batch vectors, so steady-state operation allocates
    /// nothing.
    pool: Vec<Vec<Entry>>,
    live: usize,
    seq: u64,
    now: f64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// A queue starting at time 0.
    #[must_use]
    pub fn new() -> Self {
        Self::starting_at(0.0)
    }

    /// A queue whose clock starts at `t0`.
    #[must_use]
    pub fn starting_at(t0: f64) -> Self {
        assert!(t0.is_finite());
        Self {
            slots: Vec::new(),
            free: Vec::new(),
            bottom: Vec::new(),
            bottom_at: 0,
            rungs: Vec::new(),
            top: Vec::new(),
            top_start: f64::NEG_INFINITY,
            top_lo: f64::INFINITY,
            top_hi: f64::NEG_INFINITY,
            pool: Vec::new(),
            live: 0,
            seq: 0,
            now: t0,
        }
    }

    /// Current simulation time (the time of the last delivered event).
    #[must_use]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Schedule `event` at absolute time `at` and return its handle.
    ///
    /// Timestamps up to `1e-12` s before the current clock are tolerated
    /// (they arise from float rounding in duration sums) but are clamped to
    /// `now`, so the clock never runs backwards when they are delivered.
    ///
    /// # Panics
    /// If `at` precedes the current clock by more than the tolerance
    /// (causality violation) or is not finite.
    pub fn schedule(&mut self, at: f64, event: E) -> EventId {
        assert!(at.is_finite(), "event time must be finite");
        assert!(
            at >= self.now - 1e-12,
            "cannot schedule event at {at} before now = {}",
            self.now
        );
        vpp_substrate::trace::counter("des.scheduled", 1);
        let time = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;

        let index = match self.free.pop() {
            Some(i) => {
                self.slots[i as usize].event = Some(event);
                i
            }
            None => {
                assert!(self.slots.len() < u32::MAX as usize, "event slab full");
                self.slots.push(Slot {
                    gen: 0,
                    event: Some(event),
                });
                (self.slots.len() - 1) as u32
            }
        };
        let gen = self.slots[index as usize].gen;
        self.place(Entry {
            time,
            seq,
            index,
            gen,
        });
        self.live += 1;
        EventId { index, gen }
    }

    /// Schedule `event` `dt >= 0` seconds from now.
    pub fn schedule_in(&mut self, dt: f64, event: E) -> EventId {
        assert!(dt >= 0.0, "negative delay {dt}");
        self.schedule(self.now + dt, event)
    }

    /// Route an entry to the innermost structure whose active range covers
    /// its time: top (unsorted append), a rung day at or after that rung's
    /// migration cursor, or the sorted bottom run.
    fn place(&mut self, e: Entry) {
        let t = e.time;
        if t >= self.top_start {
            if t < self.top_lo {
                self.top_lo = t;
            }
            if t > self.top_hi {
                self.top_hi = t;
            }
            self.top.push(e);
            return;
        }
        for r in &mut self.rungs {
            let d = r.day(t);
            if d >= r.cur {
                r.days[d].push(e);
                r.remaining += 1;
                return;
            }
        }
        // Earlier than every remaining rung day: it belongs in the run
        // currently being delivered. `t >= now` bounds the memmove to the
        // undelivered tail, which is at most one day batch.
        let key = (t, e.seq);
        let pos = self.bottom_at
            + self.bottom[self.bottom_at..].partition_point(|x| (x.time, x.seq) < key);
        self.bottom.insert(pos, e);
    }

    /// Remove `id`'s event, returning its payload. O(1): the calendar
    /// entry stays behind as a tombstone (generation mismatch) and is
    /// dropped when it surfaces at the bottom. Stale ids (already
    /// delivered, cancelled or rescheduled) yield `None`.
    pub fn cancel(&mut self, id: EventId) -> Option<E> {
        let slot = self.slots.get(id.index as usize)?;
        if slot.gen != id.gen || slot.event.is_none() {
            return None;
        }
        vpp_substrate::trace::counter("des.cancelled", 1);
        let event = self.release(id.index);
        self.live -= 1;
        Some(event)
    }

    /// Move `id`'s event to absolute time `at`, returning the new handle.
    /// The event re-enters the FIFO tie order at the back of its new
    /// timestamp (it draws a fresh sequence number). Stale ids yield `None`.
    ///
    /// # Panics
    /// As [`EventQueue::schedule`], if `at` violates causality.
    pub fn reschedule(&mut self, id: EventId, at: f64) -> Option<EventId> {
        let event = self.cancel(id)?;
        Some(self.schedule(at, event))
    }

    /// Free slot `index`, bumping its generation (which tombstones every
    /// outstanding calendar entry stamped with the old one).
    fn release(&mut self, index: u32) -> E {
        let slot = &mut self.slots[index as usize];
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(index);
        slot.event.take().expect("released an empty slot")
    }

    /// Recycle a spent entry vector into the allocation pool.
    fn recycle(&mut self, mut v: Vec<Entry>) {
        if v.capacity() > 0 && self.pool.len() < 8 * RUNG_DAYS {
            v.clear();
            self.pool.push(v);
        }
    }

    fn take_vec(&mut self) -> Vec<Entry> {
        self.pool.pop().unwrap_or_default()
    }

    /// Turn a due batch into deliverable form: scatter oversized,
    /// non-degenerate batches into a deeper rung; otherwise sort the batch
    /// and install it as the new bottom run.
    fn promote(&mut self, mut batch: Vec<Entry>) {
        if batch.len() > SPAWN_THRESH {
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for e in &batch {
                lo = lo.min(e.time);
                hi = hi.max(e.time);
            }
            let span = hi - lo;
            // The span guard keeps `inv_width` finite and bails out on
            // timestamp bursts, which no bucket width can separate: those
            // take the sort path below as one larger run.
            if span > hi.abs().max(1.0) * 1e-12 {
                let mut rung = Rung {
                    start: lo,
                    inv_width: RUNG_DAYS as f64 / span,
                    cur: 0,
                    remaining: batch.len(),
                    days: Vec::with_capacity(RUNG_DAYS),
                };
                for _ in 0..RUNG_DAYS {
                    let d = self.take_vec();
                    rung.days.push(d);
                }
                for e in batch.drain(..) {
                    let d = rung.day(e.time);
                    rung.days[d].push(e);
                }
                self.recycle(batch);
                self.rungs.push(rung);
                return;
            }
        }
        batch.sort_unstable_by(entry_cmp);
        let old = std::mem::replace(&mut self.bottom, batch);
        self.recycle(old);
        self.bottom_at = 0;
    }

    /// Advance until the bottom front is a live (non-tombstone) entry,
    /// migrating due days down the ladder as needed. False when the queue
    /// is empty.
    fn ensure_bottom(&mut self) -> bool {
        loop {
            while let Some(e) = self.bottom.get(self.bottom_at) {
                if self.slots[e.index as usize].gen == e.gen {
                    return true;
                }
                self.bottom_at += 1;
            }
            let batch = loop {
                if matches!(self.rungs.last(), Some(r) if r.remaining == 0) {
                    let spent = self.rungs.pop().expect("just matched");
                    for d in spent.days {
                        self.recycle(d);
                    }
                    continue;
                }
                if let Some(r) = self.rungs.last_mut() {
                    let mut cur = r.cur;
                    while r.days[cur].is_empty() {
                        cur += 1;
                    }
                    let day = std::mem::take(&mut r.days[cur]);
                    r.cur = cur + 1;
                    r.remaining -= day.len();
                    break day;
                }
                if !self.top.is_empty() {
                    // Migrate the whole top; later-than-everything pushes
                    // keep appending to the (now empty) top, everything
                    // below `top_hi` routes into the rung this spawns.
                    self.top_start = self.top_hi;
                    self.top_lo = f64::INFINITY;
                    self.top_hi = f64::NEG_INFINITY;
                    let fresh = self.take_vec();
                    break std::mem::replace(&mut self.top, fresh);
                }
                // Fully drained: let the next burst of pushes build a new
                // top covering whatever range it likes.
                self.top_start = f64::NEG_INFINITY;
                return false;
            };
            self.promote(batch);
        }
    }

    /// Time of the next event without removing it.
    ///
    /// Non-mutating, so it cannot migrate due days down the ladder; when
    /// the delivery run is exhausted this scans all pending entries.
    /// Prefer [`EventQueue::earliest_time`] in delivery loops.
    #[must_use]
    pub fn peek_time(&self) -> Option<f64> {
        if self.live == 0 {
            return None;
        }
        for e in &self.bottom[self.bottom_at..] {
            if self.slots[e.index as usize].gen == e.gen {
                return Some(e.time);
            }
        }
        let mut best = f64::INFINITY;
        let scan = |best: &mut f64, e: &Entry| {
            if e.time < *best && self.slots[e.index as usize].gen == e.gen {
                *best = e.time;
            }
        };
        for r in &self.rungs {
            for d in &r.days[r.cur..] {
                for e in d {
                    scan(&mut best, e);
                }
            }
        }
        for e in &self.top {
            scan(&mut best, e);
        }
        debug_assert!(best.is_finite(), "live > 0 but no live entry found");
        Some(best)
    }

    /// Time of the next event, migrating due days down the ladder so
    /// repeated calls (and the following [`EventQueue::next`]) stay
    /// amortised O(1).
    pub fn earliest_time(&mut self) -> Option<f64> {
        if !self.ensure_bottom() {
            return None;
        }
        Some(self.bottom[self.bottom_at].time)
    }

    /// Deliver the next event, advancing the clock to its timestamp.
    ///
    /// The clock is monotone: delivery never moves it backwards, even if a
    /// tolerated-late timestamp slipped below `now` (see [`Self::schedule`]).
    #[allow(clippy::should_implement_trait)] // queue semantics, not iteration
    pub fn next(&mut self) -> Option<(f64, E)> {
        if !self.ensure_bottom() {
            return None;
        }
        let e = self.bottom[self.bottom_at];
        self.bottom_at += 1;
        // Hide the slab miss of the next couple of deliveries behind this
        // one's bookkeeping.
        for k in 0..2 {
            if let Some(n) = self.bottom.get(self.bottom_at + k) {
                prefetch_slot(&self.slots, n.index);
            }
        }
        let event = self.release(e.index);
        self.live -= 1;
        self.now = self.now.max(e.time);
        vpp_substrate::trace::counter("des.delivered", 1);
        Some((e.time, event))
    }

    /// Deliver the next event only if it is due at or before `cutoff`.
    /// The event-driven scheduler retires finishes with
    /// `next_before(t + tolerance)` without paying a peek-and-pop pair.
    pub fn next_before(&mut self, cutoff: f64) -> Option<(f64, E)> {
        if !self.ensure_bottom() {
            return None;
        }
        if self.bottom[self.bottom_at].time > cutoff {
            return None;
        }
        self.next()
    }

    /// Drain all events in time order, calling `f(time, event)` for each.
    /// Handlers may schedule further events through the returned closure
    /// argument — use [`EventQueue::next`] in a loop for that pattern; this
    /// convenience method is for static event sets.
    pub fn drain(&mut self, mut f: impl FnMut(f64, E)) {
        while let Some((t, e)) = self.next() {
            f(t, e);
        }
    }
}

pub mod reference {
    //! The superseded `BinaryHeap` engine, kept as the semantic reference
    //! for the calendar queue: the `des_equivalence` property suite and the
    //! `des_throughput` bench drive both implementations and demand the
    //! same `(time, seq)` delivery sequence / report the speedup.

    use std::cmp::Ordering;
    use std::collections::BinaryHeap;
    use std::collections::HashSet;

    struct Entry<E> {
        time: f64,
        seq: u64,
        event: E,
    }

    impl<E> PartialEq for Entry<E> {
        fn eq(&self, other: &Self) -> bool {
            self.time == other.time && self.seq == other.seq
        }
    }
    impl<E> Eq for Entry<E> {}

    impl<E> Ord for Entry<E> {
        fn cmp(&self, other: &Self) -> Ordering {
            // Reverse: BinaryHeap is a max-heap, we want earliest-first.
            other
                .time
                .total_cmp(&self.time)
                .then_with(|| other.seq.cmp(&self.seq))
        }
    }
    impl<E> PartialOrd for Entry<E> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    /// Earliest-first heap queue; cancellation is lazy (the entry stays in
    /// the heap until it surfaces), which is fine for a reference but is
    /// part of why the calendar replaced it.
    #[derive(Default)]
    pub struct HeapQueue<E> {
        heap: BinaryHeap<Entry<E>>,
        /// Sequence numbers of pending (not delivered, not cancelled)
        /// events; lazily-cancelled heap entries are absent here.
        live: HashSet<u64>,
        seq: u64,
        now: f64,
    }

    impl<E> HeapQueue<E> {
        /// A queue starting at time 0.
        #[must_use]
        pub fn new() -> Self {
            Self {
                heap: BinaryHeap::new(),
                live: HashSet::new(),
                seq: 0,
                now: 0.0,
            }
        }

        /// Current simulation time.
        #[must_use]
        pub fn now(&self) -> f64 {
            self.now
        }

        /// Number of pending (non-cancelled) events.
        #[must_use]
        pub fn len(&self) -> usize {
            self.live.len()
        }

        /// True when no events are pending.
        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.live.is_empty()
        }

        /// Schedule `event` at absolute time `at`, returning its sequence
        /// number (the heap's cancellation handle).
        ///
        /// # Panics
        /// As [`super::EventQueue::schedule`].
        pub fn schedule(&mut self, at: f64, event: E) -> u64 {
            assert!(at.is_finite(), "event time must be finite");
            assert!(
                at >= self.now - 1e-12,
                "cannot schedule event at {at} before now = {}",
                self.now
            );
            let seq = self.seq;
            self.heap.push(Entry {
                time: at.max(self.now),
                seq,
                event,
            });
            self.live.insert(seq);
            self.seq += 1;
            seq
        }

        /// Cancel the event with sequence number `seq`. Returns whether a
        /// pending event was actually cancelled; delivered or already
        /// cancelled seqs are no-ops. The heap entry stays behind as a
        /// tombstone and is dropped when it surfaces in [`Self::next`].
        pub fn cancel(&mut self, seq: u64) -> bool {
            self.live.remove(&seq)
        }

        /// Deliver the next pending event.
        #[allow(clippy::should_implement_trait)] // queue semantics, not iteration
        pub fn next(&mut self) -> Option<(f64, E)> {
            loop {
                let entry = self.heap.pop()?;
                if !self.live.remove(&entry.seq) {
                    continue; // lazily-cancelled tombstone
                }
                self.now = self.now.max(entry.time);
                return Some((entry.time, entry.event));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_delivered_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.next().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(1.0, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.next().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_delivery() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        assert_eq!(q.now(), 0.0);
        q.next();
        assert_eq!(q.now(), 5.0);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::starting_at(10.0);
        q.schedule_in(2.5, "x");
        assert_eq!(q.peek_time(), Some(12.5));
    }

    #[test]
    #[should_panic(expected = "before now")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        q.next();
        q.schedule(1.0, ());
    }

    #[test]
    fn clock_is_monotone_under_boundary_tolerance_scheduling() {
        let mut q = EventQueue::new();
        q.schedule(1.0, "a");
        q.next();
        assert_eq!(q.now(), 1.0);
        // A float-rounding timestamp just inside the 1e-12 tolerance used
        // to be accepted verbatim and dragged the clock backwards on
        // delivery. It must now be clamped to `now`.
        q.schedule(1.0 - 1e-13, "late");
        q.schedule_in(0.5, "future");
        let mut prev = q.now();
        while q.next().is_some() {
            assert!(
                q.now() >= prev,
                "clock moved backwards: {prev} -> {}",
                q.now()
            );
            prev = q.now();
        }
        assert_eq!(q.now(), 1.5);
    }

    #[test]
    fn handlers_can_chain_events() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 3u32);
        let mut fired = Vec::new();
        while let Some((t, remaining)) = q.next() {
            fired.push(t);
            if remaining > 0 {
                q.schedule_in(1.0, remaining - 1);
            }
        }
        assert_eq!(fired, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn drain_consumes_everything() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 1);
        q.schedule(2.0, 2);
        let mut seen = 0;
        q.drain(|_, _| seen += 1);
        assert_eq!(seen, 2);
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_removes_a_pending_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        assert_eq!(q.cancel(a), Some("a"));
        assert_eq!(q.len(), 1);
        assert_eq!(q.next(), Some((2.0, "b")));
        assert!(q.is_empty());
    }

    #[test]
    fn stale_ids_do_not_touch_slot_reusers() {
        let mut q = EventQueue::new();
        let a = q.schedule(1.0, "a");
        assert_eq!(q.cancel(a), Some("a"));
        // The slot is re-used by the next schedule; the stale id must miss.
        let b = q.schedule(3.0, "b");
        assert_eq!(q.cancel(a), None);
        assert_eq!(q.reschedule(a, 9.0), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.cancel(b), Some("b"));
    }

    #[test]
    fn delivered_ids_go_stale() {
        let mut q = EventQueue::new();
        let a = q.schedule(1.0, "a");
        assert_eq!(q.next(), Some((1.0, "a")));
        assert_eq!(q.cancel(a), None);
    }

    #[test]
    fn reschedule_moves_and_re_sequences() {
        let mut q = EventQueue::new();
        let a = q.schedule(5.0, "a");
        q.schedule(5.0, "b");
        // Moving `a` to the same timestamp sends it behind `b` in the tie
        // order (fresh sequence number).
        let a2 = q.reschedule(a, 5.0).unwrap();
        assert_eq!(q.next(), Some((5.0, "b")));
        assert_eq!(q.next(), Some((5.0, "a")));
        assert_eq!(q.cancel(a2), None, "delivered handle is stale");

        let c = q.schedule(10.0, "c");
        q.schedule(7.0, "d");
        let c2 = q.reschedule(c, 6.0).unwrap();
        assert_eq!(q.next(), Some((6.0, "c")));
        assert_eq!(q.next(), Some((7.0, "d")));
        assert_eq!(q.cancel(c2), None);
    }

    #[test]
    fn mass_cancellation_keeps_len_exact_and_order_sorted() {
        let mut q = EventQueue::new();
        let mut rng = vpp_substrate::Rng::new(42);
        let mut ids = Vec::new();
        for i in 0..10_000 {
            ids.push(q.schedule(rng.uniform(0.0, 1e4), i));
        }
        assert_eq!(q.len(), 10_000);
        // Cancel most of them: the tombstones must be skipped silently and
        // `len` must stay exact throughout.
        for id in ids.drain(..9_000) {
            assert!(q.cancel(id).is_some());
        }
        assert_eq!(q.len(), 1_000);
        let mut last = f64::NEG_INFINITY;
        let mut n = 0;
        while let Some((t, _)) = q.next() {
            assert!(t >= last);
            last = t;
            n += 1;
        }
        assert_eq!(n, 1_000);
    }

    #[test]
    fn sparse_far_future_events_stay_ordered() {
        let mut q = EventQueue::new();
        // Two events an enormous span apart: the ladder must separate
        // them without degenerate bucket widths.
        q.schedule(0.5, "near");
        q.schedule(1e9, "far");
        assert_eq!(q.next(), Some((0.5, "near")));
        assert_eq!(q.peek_time(), Some(1e9));
        assert_eq!(q.next(), Some((1e9, "far")));
        assert!(q.next().is_none());
    }

    #[test]
    fn next_before_respects_the_cutoff() {
        let mut q = EventQueue::new();
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        assert_eq!(q.next_before(1.5), Some((1.0, "a")));
        assert_eq!(q.next_before(1.5), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.earliest_time(), Some(2.0));
        assert_eq!(q.next_before(2.0), Some((2.0, "b")));
    }

    #[test]
    fn zero_span_and_identical_times_take_the_sort_path() {
        let mut q = EventQueue::new();
        for i in 0..200 {
            q.schedule(7.25, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.next().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn timestamp_burst_with_cancellations_drains_in_fifo_order() {
        // One burst sharing a timestamp, a third of it cancelled: the
        // tombstones must vanish without disturbing the FIFO tie order.
        let mut q = EventQueue::new();
        let mut ids = Vec::new();
        for i in 0..64 {
            ids.push(q.schedule(5.0, i));
        }
        for (i, id) in ids.iter().enumerate() {
            if i % 3 == 0 {
                assert_eq!(q.cancel(*id), Some(i as i32));
            }
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.next().map(|(_, e)| e)).collect();
        let expect: Vec<i32> = (0..64).filter(|i| i % 3 != 0).collect();
        assert_eq!(order, expect);
    }

    #[test]
    fn pushes_below_the_active_rungs_land_in_the_delivery_run() {
        // Force a rung spawn, drain into it, then schedule events that
        // precede every remaining rung day: they must be delivered in
        // global order, not appended behind the current batch.
        let mut q = EventQueue::new();
        let mut rng = vpp_substrate::Rng::new(11);
        for i in 0..2_000u32 {
            q.schedule(rng.uniform(0.0, 1_000.0), i);
        }
        let mut last = f64::NEG_INFINITY;
        for _ in 0..500 {
            let (t, _) = q.next().unwrap();
            assert!(t >= last);
            last = t;
        }
        for i in 0..50u32 {
            q.schedule(q.now() + rng.uniform(0.0, 1_000.0 - q.now()), 10_000 + i);
        }
        let mut n = 0;
        while let Some((t, _)) = q.next() {
            assert!(t >= last, "out of order: {t} after {last}");
            last = t;
            n += 1;
        }
        assert_eq!(n, 1_550);
    }

    #[test]
    fn hold_pattern_stays_sorted_and_pinned() {
        // Classic hold model: pop one, push one slightly ahead. The
        // pending count is pinned and the clock must stay monotone while
        // the ladder continuously re-spawns from the top.
        let mut q = EventQueue::new();
        let mut rng = vpp_substrate::Rng::new(3);
        for i in 0..1_000u32 {
            q.schedule(rng.uniform(0.0, 2.0), i);
        }
        let mut last = f64::NEG_INFINITY;
        for _ in 0..10_000 {
            let (t, e) = q.next().unwrap();
            assert!(t >= last);
            last = t;
            q.schedule(t + rng.uniform(0.0, 2.0), e);
            assert_eq!(q.len(), 1_000);
        }
    }

    #[test]
    fn heap_reference_matches_on_a_smoke_sequence() {
        let mut rng = vpp_substrate::Rng::new(7);
        let mut cal = EventQueue::new();
        let mut heap = reference::HeapQueue::new();
        for i in 0..1_000 {
            let t = rng.uniform(0.0, 1e5);
            cal.schedule(t, i);
            heap.schedule(t, i);
        }
        loop {
            match (cal.next(), heap.next()) {
                (None, None) => break,
                (a, b) => assert_eq!(a, b),
            }
        }
    }
}
