//! A minimal discrete-event engine.
//!
//! The cluster executor uses this queue to interleave per-rank compute
//! segments, collective communication, and telemetry events in global time
//! order. Events scheduled for the same instant are delivered in FIFO order
//! (a monotone sequence number breaks ties), which keeps multi-rank barriers
//! deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    time: f64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Earliest-first event queue with a simulation clock.
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: f64,
}

impl<E> EventQueue<E> {
    /// A queue starting at time 0.
    #[must_use]
    pub fn new() -> Self {
        Self::starting_at(0.0)
    }

    /// A queue whose clock starts at `t0`.
    #[must_use]
    pub fn starting_at(t0: f64) -> Self {
        assert!(t0.is_finite());
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            now: t0,
        }
    }

    /// Current simulation time (the time of the last delivered event).
    #[must_use]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// Timestamps up to `1e-12` s before the current clock are tolerated
    /// (they arise from float rounding in duration sums) but are clamped to
    /// `now`, so the clock never runs backwards when they are delivered.
    ///
    /// # Panics
    /// If `at` precedes the current clock by more than the tolerance
    /// (causality violation) or is not finite.
    pub fn schedule(&mut self, at: f64, event: E) {
        assert!(at.is_finite(), "event time must be finite");
        assert!(
            at >= self.now - 1e-12,
            "cannot schedule event at {at} before now = {}",
            self.now
        );
        vpp_substrate::trace::counter("des.scheduled", 1);
        self.heap.push(Entry {
            time: at.max(self.now),
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Schedule `event` `dt >= 0` seconds from now.
    pub fn schedule_in(&mut self, dt: f64, event: E) {
        assert!(dt >= 0.0, "negative delay {dt}");
        self.schedule(self.now + dt, event);
    }

    /// Time of the next event without removing it.
    #[must_use]
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Deliver the next event, advancing the clock to its timestamp.
    ///
    /// The clock is monotone: delivery never moves it backwards, even if a
    /// tolerated-late timestamp slipped below `now` (see [`Self::schedule`]).
    #[allow(clippy::should_implement_trait)] // queue semantics, not iteration
    pub fn next(&mut self) -> Option<(f64, E)> {
        let entry = self.heap.pop()?;
        self.now = self.now.max(entry.time);
        vpp_substrate::trace::counter("des.delivered", 1);
        Some((entry.time, entry.event))
    }

    /// Drain all events in time order, calling `f(time, event)` for each.
    /// Handlers may schedule further events through the returned closure
    /// argument — use [`EventQueue::next`] in a loop for that pattern; this
    /// convenience method is for static event sets.
    pub fn drain(&mut self, mut f: impl FnMut(f64, E)) {
        while let Some((t, e)) = self.next() {
            f(t, e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_delivered_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.next().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(1.0, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.next().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_delivery() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        assert_eq!(q.now(), 0.0);
        q.next();
        assert_eq!(q.now(), 5.0);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::starting_at(10.0);
        q.schedule_in(2.5, "x");
        assert_eq!(q.peek_time(), Some(12.5));
    }

    #[test]
    #[should_panic(expected = "before now")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        q.next();
        q.schedule(1.0, ());
    }

    #[test]
    fn clock_is_monotone_under_boundary_tolerance_scheduling() {
        let mut q = EventQueue::new();
        q.schedule(1.0, "a");
        q.next();
        assert_eq!(q.now(), 1.0);
        // A float-rounding timestamp just inside the 1e-12 tolerance used
        // to be accepted verbatim and dragged the clock backwards on
        // delivery. It must now be clamped to `now`.
        q.schedule(1.0 - 1e-13, "late");
        q.schedule_in(0.5, "future");
        let mut prev = q.now();
        while q.next().is_some() {
            assert!(
                q.now() >= prev,
                "clock moved backwards: {prev} -> {}",
                q.now()
            );
            prev = q.now();
        }
        assert_eq!(q.now(), 1.5);
    }

    #[test]
    fn handlers_can_chain_events() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 3u32);
        let mut fired = Vec::new();
        while let Some((t, remaining)) = q.next() {
            fired.push(t);
            if remaining > 0 {
                q.schedule_in(1.0, remaining - 1);
            }
        }
        assert_eq!(fired, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn drain_consumes_everything() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 1);
        q.schedule(2.0, 2);
        let mut seen = 0;
        q.drain(|_, _| seen += 1);
        assert_eq!(seen, 2);
        assert!(q.is_empty());
    }
}
