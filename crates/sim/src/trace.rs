//! Piecewise-constant power traces.
//!
//! Every hardware model in this workspace produces a [`PowerTrace`]: a
//! right-open, gap-free sequence of `(duration, watts)` segments starting at
//! some absolute simulated time. The telemetry layer samples traces with
//! window averaging (which is how Cray PM counters report power), and the
//! statistics layer reduces the sampled series to the paper's metrics.
//!
//! Segments are stored as absolute end-times so lookups are a binary search
//! and long traces do not accumulate floating-point drift.

/// One piecewise-constant segment of a [`PowerTrace`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Absolute start time, seconds.
    pub t0: f64,
    /// Absolute end time, seconds (`t1 > t0`).
    pub t1: f64,
    /// Constant power over `[t0, t1)`, watts.
    pub watts: f64,
}

impl Segment {
    /// Duration in seconds.
    #[must_use]
    pub fn duration(&self) -> f64 {
        self.t1 - self.t0
    }

    /// Energy in joules.
    #[must_use]
    pub fn energy(&self) -> f64 {
        self.duration() * self.watts
    }
}

/// A piecewise-constant power signal over `[start, end)`.
///
/// The trace is defined to be 0 W outside its domain, which makes summing
/// traces of different extents (e.g. GPU traces that finish at different
/// times within a node) well defined.
///
/// ```
/// use vpp_sim::PowerTrace;
///
/// let mut t = PowerTrace::new(0.0);
/// t.push(10.0, 300.0); // 10 s at 300 W
/// t.push(5.0, 100.0);
/// assert_eq!(t.energy(), 3500.0);
/// assert_eq!(t.power_at(12.0), 100.0);
/// assert_eq!(t.mean_power(5.0, 15.0), 200.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PowerTrace {
    start: f64,
    /// Absolute end time of segment `i`; strictly increasing.
    ends: Vec<f64>,
    /// Power of segment `i` in watts.
    watts: Vec<f64>,
}

/// Tolerance used when merging adjacent segments of equal power.
const MERGE_EPS: f64 = 1e-9;

impl PowerTrace {
    /// An empty trace beginning at `start` seconds.
    #[must_use]
    pub fn new(start: f64) -> Self {
        assert!(start.is_finite(), "trace start must be finite");
        Self {
            start,
            ends: Vec::new(),
            watts: Vec::new(),
        }
    }

    /// Build a trace from `(duration, watts)` pairs starting at `start`.
    #[must_use]
    pub fn from_segments(start: f64, segs: impl IntoIterator<Item = (f64, f64)>) -> Self {
        let mut t = Self::new(start);
        for (dur, w) in segs {
            t.push(dur, w);
        }
        t
    }

    /// Append a segment of `dur` seconds at `watts` W. Zero-duration pushes
    /// are ignored; adjacent segments of (numerically) equal power merge.
    ///
    /// # Panics
    /// If `dur` is negative or not finite, or `watts` is not finite.
    pub fn push(&mut self, dur: f64, watts: f64) {
        assert!(dur.is_finite() && dur >= 0.0, "bad duration {dur}");
        assert!(watts.is_finite(), "bad power {watts}");
        if dur == 0.0 {
            return;
        }
        let end = self.end() + dur;
        if let (Some(last_end), Some(last_w)) = (self.ends.last_mut(), self.watts.last()) {
            if (last_w - watts).abs() <= MERGE_EPS {
                *last_end = end;
                return;
            }
        }
        self.ends.push(end);
        self.watts.push(watts);
    }

    /// Start of the trace's domain, seconds.
    #[must_use]
    pub fn start(&self) -> f64 {
        self.start
    }

    /// End of the trace's domain, seconds. Equals `start` when empty.
    #[must_use]
    pub fn end(&self) -> f64 {
        *self.ends.last().unwrap_or(&self.start)
    }

    /// Total duration in seconds.
    #[must_use]
    pub fn duration(&self) -> f64 {
        self.end() - self.start
    }

    /// Number of stored segments.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ends.len()
    }

    /// True when the trace holds no segments.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    /// Instantaneous power at time `t`; 0 W outside the domain.
    #[must_use]
    pub fn power_at(&self, t: f64) -> f64 {
        if t < self.start || t >= self.end() || self.is_empty() {
            return 0.0;
        }
        // First segment whose end exceeds t.
        let idx = self.ends.partition_point(|&e| e <= t);
        self.watts[idx]
    }

    /// Iterate over segments with absolute times.
    pub fn segments(&self) -> impl Iterator<Item = Segment> + '_ {
        (0..self.ends.len()).map(move |i| Segment {
            t0: if i == 0 { self.start } else { self.ends[i - 1] },
            t1: self.ends[i],
            watts: self.watts[i],
        })
    }

    /// Total energy in joules.
    #[must_use]
    pub fn energy(&self) -> f64 {
        self.segments().map(|s| s.energy()).sum()
    }

    /// Energy delivered within `[t0, t1)`, treating the trace as 0 W outside
    /// its domain.
    #[must_use]
    pub fn energy_between(&self, t0: f64, t1: f64) -> f64 {
        if t1 <= t0 || self.is_empty() {
            return 0.0;
        }
        let lo = t0.max(self.start);
        let hi = t1.min(self.end());
        if hi <= lo {
            return 0.0;
        }
        let mut first = self.ends.partition_point(|&e| e <= lo);
        let mut acc = 0.0;
        let mut cursor = lo;
        while cursor < hi && first < self.ends.len() {
            let seg_end = self.ends[first].min(hi);
            acc += (seg_end - cursor) * self.watts[first];
            cursor = seg_end;
            first += 1;
        }
        acc
    }

    /// Time-weighted mean power over the window `[t0, t1)` — the quantity a
    /// window-averaging power meter reports. Portions of the window outside
    /// the trace's domain count as 0 W.
    #[must_use]
    pub fn mean_power(&self, t0: f64, t1: f64) -> f64 {
        if t1 <= t0 {
            return 0.0;
        }
        self.energy_between(t0, t1) / (t1 - t0)
    }

    /// Maximum segment power; `None` for empty traces.
    #[must_use]
    pub fn max_power(&self) -> Option<f64> {
        self.watts.iter().copied().reduce(f64::max)
    }

    /// Minimum segment power; `None` for empty traces.
    #[must_use]
    pub fn min_power(&self) -> Option<f64> {
        self.watts.iter().copied().reduce(f64::min)
    }

    /// Shift the whole trace by `dt` seconds (positive = later).
    pub fn shift(&mut self, dt: f64) {
        assert!(dt.is_finite());
        self.start += dt;
        for e in &mut self.ends {
            *e += dt;
        }
    }

    /// Multiply all powers by `k`.
    pub fn scale_power(&mut self, k: f64) {
        assert!(k.is_finite());
        for w in &mut self.watts {
            *w *= k;
        }
    }

    /// Add a constant offset (e.g. an idle floor) to every segment.
    pub fn add_constant(&mut self, w: f64) {
        assert!(w.is_finite());
        for x in &mut self.watts {
            *x += w;
        }
    }

    /// Extract the sub-trace covering `[t0, t1)` ∩ domain.
    #[must_use]
    pub fn slice(&self, t0: f64, t1: f64) -> PowerTrace {
        let lo = t0.max(self.start);
        let hi = t1.min(self.end());
        let mut out = PowerTrace::new(lo.min(hi));
        if hi <= lo {
            return out;
        }
        let mut idx = self.ends.partition_point(|&e| e <= lo);
        let mut cursor = lo;
        while cursor < hi && idx < self.ends.len() {
            let seg_end = self.ends[idx].min(hi);
            out.push(seg_end - cursor, self.watts[idx]);
            cursor = seg_end;
            idx += 1;
        }
        out
    }

    /// Append another trace, closing any gap between `self.end()` and
    /// `other.start()` with 0 W. `other` must not start before `self.end()`
    /// by more than a rounding tolerance.
    pub fn append(&mut self, other: &PowerTrace) {
        let gap = other.start - self.end();
        assert!(
            gap >= -1e-9,
            "appended trace starts {}s before the current end",
            -gap
        );
        if gap > 1e-12 {
            self.push(gap, 0.0);
        }
        for seg in other.segments() {
            self.push(seg.duration(), seg.watts);
        }
    }

    /// Point-wise sum of several traces. The result spans the union of the
    /// inputs' domains; each input contributes 0 W outside its own domain.
    #[must_use]
    pub fn sum(traces: &[&PowerTrace]) -> PowerTrace {
        let non_empty: Vec<&&PowerTrace> = traces.iter().filter(|t| !t.is_empty()).collect();
        if non_empty.is_empty() {
            return PowerTrace::new(0.0);
        }
        let start = non_empty
            .iter()
            .map(|t| t.start)
            .fold(f64::INFINITY, f64::min);
        let end = non_empty.iter().map(|t| t.end()).fold(start, f64::max);
        // Union of all breakpoints.
        let mut cuts: Vec<f64> = Vec::with_capacity(non_empty.iter().map(|t| t.len()).sum());
        cuts.push(start);
        for t in &non_empty {
            cuts.push(t.start);
            cuts.extend_from_slice(&t.ends);
        }
        cuts.push(end);
        cuts.sort_by(f64::total_cmp);
        cuts.dedup_by(|a, b| (*a - *b).abs() <= MERGE_EPS);

        let mut out = PowerTrace::new(start);
        for pair in cuts.windows(2) {
            let (t0, t1) = (pair[0], pair[1]);
            if t1 - t0 <= 0.0 {
                continue;
            }
            let mid = 0.5 * (t0 + t1);
            let w: f64 = non_empty.iter().map(|t| t.power_at(mid)).sum();
            out.push(t1 - t0, w);
        }
        out
    }

    /// Re-quantise onto windows of `dt` seconds, replacing each window with
    /// its mean power. Energy is conserved exactly (up to rounding); detail
    /// finer than `dt` is lost. Used to bound the memory of archived
    /// fleet-scale traces.
    ///
    /// # Panics
    /// If `dt` is not positive.
    #[must_use]
    pub fn coarsen(&self, dt: f64) -> PowerTrace {
        assert!(dt > 0.0 && dt.is_finite(), "bad window {dt}");
        let mut out = PowerTrace::new(self.start);
        if self.is_empty() {
            return out;
        }
        let mut t = self.start;
        let end = self.end();
        while t < end {
            let hi = (t + dt).min(end);
            out.push(hi - t, self.mean_power(t, hi));
            t = hi;
        }
        out
    }

    /// Instantaneous point samples every `dt` seconds starting at
    /// `start + dt/2` (midpoint sampling). Used to emulate very fast polling.
    #[must_use]
    pub fn sample_instant(&self, dt: f64) -> Vec<f64> {
        assert!(dt > 0.0);
        let n = (self.duration() / dt).floor() as usize;
        (0..n)
            .map(|i| self.power_at(self.start + (i as f64 + 0.5) * dt))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn empty_trace_basics() {
        let t = PowerTrace::new(5.0);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.start(), 5.0);
        assert_eq!(t.end(), 5.0);
        assert_eq!(t.duration(), 0.0);
        assert_eq!(t.energy(), 0.0);
        assert_eq!(t.power_at(5.0), 0.0);
        assert!(t.max_power().is_none());
    }

    #[test]
    fn push_and_lookup() {
        let t = PowerTrace::from_segments(0.0, [(1.0, 100.0), (2.0, 50.0)]);
        assert_eq!(t.len(), 2);
        assert!(close(t.duration(), 3.0));
        assert_eq!(t.power_at(0.5), 100.0);
        assert_eq!(t.power_at(1.0), 50.0);
        assert_eq!(t.power_at(2.999), 50.0);
        assert_eq!(t.power_at(3.0), 0.0, "right-open domain");
        assert_eq!(t.power_at(-0.1), 0.0);
    }

    #[test]
    fn adjacent_equal_segments_merge() {
        let t = PowerTrace::from_segments(0.0, [(1.0, 100.0), (1.0, 100.0), (1.0, 90.0)]);
        assert_eq!(t.len(), 2);
        assert!(close(t.duration(), 3.0));
    }

    #[test]
    fn zero_duration_pushes_ignored() {
        let t = PowerTrace::from_segments(0.0, [(0.0, 42.0), (1.0, 10.0), (0.0, 7.0)]);
        assert_eq!(t.len(), 1);
        assert!(close(t.energy(), 10.0));
    }

    #[test]
    #[should_panic(expected = "bad duration")]
    fn negative_duration_panics() {
        PowerTrace::new(0.0).push(-1.0, 10.0);
    }

    #[test]
    fn energy_and_mean_power() {
        let t = PowerTrace::from_segments(0.0, [(2.0, 100.0), (2.0, 300.0)]);
        assert!(close(t.energy(), 800.0));
        assert!(close(t.mean_power(0.0, 4.0), 200.0));
        assert!(close(t.mean_power(1.0, 3.0), 200.0));
        assert!(close(t.mean_power(3.0, 5.0), 150.0), "half window is off-domain");
        assert_eq!(t.mean_power(2.0, 2.0), 0.0);
    }

    #[test]
    fn energy_between_partial_segments() {
        let t = PowerTrace::from_segments(10.0, [(4.0, 50.0)]);
        assert!(close(t.energy_between(11.0, 13.0), 100.0));
        assert!(close(t.energy_between(0.0, 100.0), 200.0));
        assert_eq!(t.energy_between(20.0, 30.0), 0.0);
        assert_eq!(t.energy_between(13.0, 11.0), 0.0, "inverted window");
    }

    #[test]
    fn shift_preserves_energy_and_shape() {
        let mut t = PowerTrace::from_segments(0.0, [(1.0, 10.0), (1.0, 20.0)]);
        let e = t.energy();
        t.shift(100.0);
        assert_eq!(t.start(), 100.0);
        assert!(close(t.energy(), e));
        assert_eq!(t.power_at(100.5), 10.0);
    }

    #[test]
    fn scale_and_offset() {
        let mut t = PowerTrace::from_segments(0.0, [(1.0, 10.0)]);
        t.scale_power(3.0);
        t.add_constant(5.0);
        assert_eq!(t.power_at(0.5), 35.0);
    }

    #[test]
    fn slice_matches_lookup() {
        let t = PowerTrace::from_segments(0.0, [(1.0, 10.0), (1.0, 20.0), (1.0, 30.0)]);
        let s = t.slice(0.5, 2.5);
        assert!(close(s.start(), 0.5));
        assert!(close(s.end(), 2.5));
        assert_eq!(s.power_at(0.75), 10.0);
        assert_eq!(s.power_at(1.5), 20.0);
        assert_eq!(s.power_at(2.25), 30.0);
        assert!(close(s.energy(), t.energy_between(0.5, 2.5)));
    }

    #[test]
    fn slice_outside_domain_is_empty() {
        let t = PowerTrace::from_segments(0.0, [(1.0, 10.0)]);
        assert!(t.slice(5.0, 6.0).is_empty());
    }

    #[test]
    fn append_with_gap_inserts_zero_power() {
        let mut a = PowerTrace::from_segments(0.0, [(1.0, 10.0)]);
        let b = PowerTrace::from_segments(2.0, [(1.0, 20.0)]);
        a.append(&b);
        assert!(close(a.end(), 3.0));
        assert_eq!(a.power_at(1.5), 0.0);
        assert_eq!(a.power_at(2.5), 20.0);
    }

    #[test]
    #[should_panic(expected = "before the current end")]
    fn append_overlapping_panics() {
        let mut a = PowerTrace::from_segments(0.0, [(2.0, 10.0)]);
        let b = PowerTrace::from_segments(1.0, [(1.0, 20.0)]);
        a.append(&b);
    }

    #[test]
    fn sum_of_offset_traces() {
        let a = PowerTrace::from_segments(0.0, [(2.0, 100.0)]);
        let b = PowerTrace::from_segments(1.0, [(2.0, 50.0)]);
        let s = PowerTrace::sum(&[&a, &b]);
        assert!(close(s.start(), 0.0));
        assert!(close(s.end(), 3.0));
        assert_eq!(s.power_at(0.5), 100.0);
        assert_eq!(s.power_at(1.5), 150.0);
        assert_eq!(s.power_at(2.5), 50.0);
        assert!(close(s.energy(), a.energy() + b.energy()));
    }

    #[test]
    fn sum_ignores_empty_traces() {
        let a = PowerTrace::from_segments(0.0, [(1.0, 10.0)]);
        let e = PowerTrace::new(42.0);
        let s = PowerTrace::sum(&[&a, &e]);
        assert!(close(s.energy(), 10.0));
        assert!(close(s.start(), 0.0));
    }

    #[test]
    fn sample_instant_counts_and_values() {
        let t = PowerTrace::from_segments(0.0, [(1.0, 10.0), (1.0, 20.0)]);
        let s = t.sample_instant(0.5);
        assert_eq!(s, vec![10.0, 10.0, 20.0, 20.0]);
    }

    #[test]
    fn coarsen_conserves_energy_and_bounds_segments() {
        let mut t = PowerTrace::new(0.0);
        for i in 0..10_000 {
            t.push(0.01, if i % 2 == 0 { 100.0 } else { 350.0 });
        }
        let c = t.coarsen(2.0);
        assert!(c.len() <= (t.duration() / 2.0).ceil() as usize);
        assert!((c.energy() - t.energy()).abs() < 1e-6 * t.energy());
        assert!((c.duration() - t.duration()).abs() < 1e-9);
        // Fast alternation collapses to the mean level.
        assert!((c.power_at(50.0) - 225.0).abs() < 1.0);
    }

    #[test]
    fn coarsen_of_empty_trace_is_empty() {
        assert!(PowerTrace::new(3.0).coarsen(1.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "bad window")]
    fn coarsen_rejects_zero_window() {
        let _ = PowerTrace::from_segments(0.0, [(1.0, 1.0)]).coarsen(0.0);
    }

    #[test]
    fn long_trace_no_drift() {
        let mut t = PowerTrace::new(0.0);
        for _ in 0..100_000 {
            t.push(0.01, 123.0);
            t.push(0.01, 7.0);
        }
        assert!((t.duration() - 2000.0).abs() < 1e-6);
        assert!((t.energy() - (123.0 + 7.0) * 1000.0).abs() < 1e-3);
    }
}
