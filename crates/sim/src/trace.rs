//! Piecewise-constant power traces.
//!
//! Every hardware model in this workspace produces a [`PowerTrace`]: a
//! right-open, gap-free sequence of `(duration, watts)` segments starting at
//! some absolute simulated time. The telemetry layer samples traces with
//! window averaging (which is how Cray PM counters report power), and the
//! statistics layer reduces the sampled series to the paper's metrics.
//!
//! Segments are stored as absolute end-times so lookups are a binary search
//! and long traces do not accumulate floating-point drift. Alongside the
//! end-times the trace maintains a **prefix-energy index** (`cum[i]` =
//! joules delivered through the end of segment `i`), which makes the hot
//! reductions cheap:
//!
//! * [`PowerTrace::energy`] — O(1);
//! * [`PowerTrace::energy_between`] / [`PowerTrace::mean_power`] —
//!   O(log n) prefix difference (previously an O(segments-in-window) scan
//!   behind a binary search);
//! * [`PowerTrace::window_means`] — one forward sweep, O(segments +
//!   windows), the primitive behind telemetry sampling and [`coarsen`];
//! * [`PowerTrace::sum`] — a k-way merge over per-trace cursors,
//!   O(B·log k) for B total breakpoints (previously O(B·k·log s): a sorted
//!   cut union with a per-cut, per-trace binary-search lookup).
//!
//! The superseded quadratic algorithms live on in [`reference`] as the
//! oracle for equivalence tests and the "before" side of the bench
//! harness's before/after comparisons.
//!
//! [`coarsen`]: PowerTrace::coarsen

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One piecewise-constant segment of a [`PowerTrace`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Absolute start time, seconds.
    pub t0: f64,
    /// Absolute end time, seconds (`t1 > t0`).
    pub t1: f64,
    /// Constant power over `[t0, t1)`, watts.
    pub watts: f64,
}

impl Segment {
    /// Duration in seconds.
    #[must_use]
    pub fn duration(&self) -> f64 {
        self.t1 - self.t0
    }

    /// Energy in joules.
    #[must_use]
    pub fn energy(&self) -> f64 {
        self.duration() * self.watts
    }
}

/// A piecewise-constant power signal over `[start, end)`.
///
/// The trace is defined to be 0 W outside its domain, which makes summing
/// traces of different extents (e.g. GPU traces that finish at different
/// times within a node) well defined.
///
/// ```
/// use vpp_sim::PowerTrace;
///
/// let mut t = PowerTrace::new(0.0);
/// t.push(10.0, 300.0); // 10 s at 300 W
/// t.push(5.0, 100.0);
/// assert_eq!(t.energy(), 3500.0);
/// assert_eq!(t.power_at(12.0), 100.0);
/// assert_eq!(t.mean_power(5.0, 15.0), 200.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PowerTrace {
    start: f64,
    /// Absolute end time of segment `i`; strictly increasing.
    ends: Vec<f64>,
    /// Power of segment `i` in watts.
    watts: Vec<f64>,
    /// Prefix energy: joules delivered over `[start, ends[i])`.
    cum: Vec<f64>,
}

/// Two traces are equal when they describe the same signal; the prefix
/// index is derived state (its rounding can depend on construction order)
/// and is excluded.
impl PartialEq for PowerTrace {
    fn eq(&self, other: &Self) -> bool {
        self.start == other.start && self.ends == other.ends && self.watts == other.watts
    }
}

/// Tolerance used when merging adjacent segments of equal power.
const MERGE_EPS: f64 = 1e-9;

/// How often the k-way merge in [`PowerTrace::sum`] recomputes the running
/// power sum exactly, bounding incremental float drift.
const SUM_RESYNC: usize = 512;

/// Min-heap key for the k-way merge: next breakpoint time per input trace.
#[derive(Debug, PartialEq)]
struct MergeEvent {
    t: f64,
    trace: usize,
}

impl Eq for MergeEvent {}

impl Ord for MergeEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        other
            .t
            .total_cmp(&self.t)
            .then_with(|| other.trace.cmp(&self.trace))
    }
}

impl PartialOrd for MergeEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PowerTrace {
    /// An empty trace beginning at `start` seconds.
    #[must_use]
    pub fn new(start: f64) -> Self {
        assert!(start.is_finite(), "trace start must be finite");
        Self {
            start,
            ends: Vec::new(),
            watts: Vec::new(),
            cum: Vec::new(),
        }
    }

    /// Build a trace from `(duration, watts)` pairs starting at `start`.
    #[must_use]
    pub fn from_segments(start: f64, segs: impl IntoIterator<Item = (f64, f64)>) -> Self {
        let mut t = Self::new(start);
        for (dur, w) in segs {
            t.push(dur, w);
        }
        t
    }

    /// Append a segment of `dur` seconds at `watts` W. Zero-duration pushes
    /// are ignored; adjacent segments of (numerically) equal power merge.
    /// Amortised O(1), prefix index included.
    ///
    /// # Panics
    /// If `dur` is negative or not finite, or `watts` is not finite.
    pub fn push(&mut self, dur: f64, watts: f64) {
        assert!(dur.is_finite() && dur >= 0.0, "bad duration {dur}");
        assert!(watts.is_finite(), "bad power {watts}");
        if dur == 0.0 {
            return;
        }
        let end = self.end() + dur;
        if let (Some(last_end), Some(&last_w)) = (self.ends.last_mut(), self.watts.last()) {
            if (last_w - watts).abs() <= MERGE_EPS {
                *last_end = end;
                *self.cum.last_mut().expect("cum tracks ends") += dur * last_w;
                return;
            }
        }
        let prev_cum = self.cum.last().copied().unwrap_or(0.0);
        self.ends.push(end);
        self.watts.push(watts);
        self.cum.push(prev_cum + dur * watts);
    }

    /// Start of the trace's domain, seconds.
    #[must_use]
    pub fn start(&self) -> f64 {
        self.start
    }

    /// End of the trace's domain, seconds. Equals `start` when empty.
    #[must_use]
    pub fn end(&self) -> f64 {
        *self.ends.last().unwrap_or(&self.start)
    }

    /// Total duration in seconds.
    #[must_use]
    pub fn duration(&self) -> f64 {
        self.end() - self.start
    }

    /// Number of stored segments.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ends.len()
    }

    /// True when the trace holds no segments.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    /// Instantaneous power at time `t`; 0 W outside the domain. O(log n).
    #[must_use]
    pub fn power_at(&self, t: f64) -> f64 {
        if t < self.start || t >= self.end() || self.is_empty() {
            return 0.0;
        }
        // First segment whose end exceeds t.
        let idx = self.ends.partition_point(|&e| e <= t);
        self.watts[idx]
    }

    /// Iterate over segments with absolute times.
    pub fn segments(&self) -> impl Iterator<Item = Segment> + '_ {
        (0..self.ends.len()).map(move |i| Segment {
            t0: if i == 0 { self.start } else { self.ends[i - 1] },
            t1: self.ends[i],
            watts: self.watts[i],
        })
    }

    /// Total energy in joules. O(1) via the prefix index.
    #[must_use]
    pub fn energy(&self) -> f64 {
        self.cum.last().copied().unwrap_or(0.0)
    }

    /// Energy delivered over `[start, t)` for `t` inside the domain.
    /// O(log n): prefix lookup plus one partial segment.
    fn energy_to(&self, t: f64) -> f64 {
        let idx = self.ends.partition_point(|&e| e <= t);
        if idx == self.ends.len() {
            return self.energy();
        }
        let seg_start = if idx == 0 { self.start } else { self.ends[idx - 1] };
        let prefix = if idx == 0 { 0.0 } else { self.cum[idx - 1] };
        prefix + (t - seg_start) * self.watts[idx]
    }

    /// Energy delivered within `[t0, t1)`, treating the trace as 0 W outside
    /// its domain. O(log n) — a prefix-index difference.
    #[must_use]
    pub fn energy_between(&self, t0: f64, t1: f64) -> f64 {
        if t1 <= t0 || self.is_empty() {
            return 0.0;
        }
        let lo = t0.max(self.start);
        let hi = t1.min(self.end());
        if hi <= lo {
            return 0.0;
        }
        (self.energy_to(hi) - self.energy_to(lo)).max(0.0)
    }

    /// Time-weighted mean power over the window `[t0, t1)` — the quantity a
    /// window-averaging power meter reports. Portions of the window outside
    /// the trace's domain count as 0 W.
    #[must_use]
    pub fn mean_power(&self, t0: f64, t1: f64) -> f64 {
        if t1 <= t0 {
            return 0.0;
        }
        self.energy_between(t0, t1) / (t1 - t0)
    }

    /// Mean power over each of `n` consecutive windows of `dt` seconds
    /// starting at `t0` (window `i` covers `[t0 + i·dt, t0 + (i+1)·dt)`,
    /// boundaries computed multiplicatively so long traces do not
    /// accumulate drift). Windows outside the domain average 0 W.
    ///
    /// One forward sweep over segments and windows: O(segments + windows).
    /// This is the telemetry sampler's inner loop.
    ///
    /// # Panics
    /// If `dt` is not positive and finite, or `t0` is not finite.
    #[must_use]
    pub fn window_means(&self, t0: f64, dt: f64, n: usize) -> Vec<f64> {
        assert!(dt > 0.0 && dt.is_finite(), "bad window {dt}");
        assert!(t0.is_finite(), "bad window start {t0}");
        let mut out = Vec::with_capacity(n);
        let end = self.end();
        // Segment cursor; advances monotonically across windows.
        let mut seg = self.ends.partition_point(|&e| e <= t0.max(self.start));
        let mut cursor = t0.max(self.start).min(end);
        let mut w_start = t0;
        for i in 0..n {
            let w_end = t0 + (i + 1) as f64 * dt;
            let lo = w_start.max(self.start).min(end);
            let hi = w_end.max(self.start).min(end);
            let mut acc = 0.0;
            if hi > lo {
                cursor = cursor.max(lo);
                while seg < self.ends.len() && self.ends[seg] <= hi {
                    acc += (self.ends[seg] - cursor) * self.watts[seg];
                    cursor = self.ends[seg];
                    seg += 1;
                }
                if seg < self.ends.len() && cursor < hi {
                    acc += (hi - cursor) * self.watts[seg];
                    cursor = hi;
                }
            }
            out.push(acc / dt);
            w_start = w_end;
        }
        out
    }

    /// Maximum segment power; `None` for empty traces.
    #[must_use]
    pub fn max_power(&self) -> Option<f64> {
        self.watts.iter().copied().reduce(f64::max)
    }

    /// Minimum segment power; `None` for empty traces.
    #[must_use]
    pub fn min_power(&self) -> Option<f64> {
        self.watts.iter().copied().reduce(f64::min)
    }

    /// Shift the whole trace by `dt` seconds (positive = later).
    pub fn shift(&mut self, dt: f64) {
        assert!(dt.is_finite());
        self.start += dt;
        for e in &mut self.ends {
            *e += dt;
        }
        // Durations (hence `cum`) are unchanged only up to rounding of the
        // shifted endpoints; rebuild to keep the index exact.
        self.rebuild_cum();
    }

    /// Multiply all powers by `k`.
    pub fn scale_power(&mut self, k: f64) {
        assert!(k.is_finite());
        for w in &mut self.watts {
            *w *= k;
        }
        self.rebuild_cum();
    }

    /// Add a constant offset (e.g. an idle floor) to every segment.
    pub fn add_constant(&mut self, w: f64) {
        assert!(w.is_finite());
        for x in &mut self.watts {
            *x += w;
        }
        self.rebuild_cum();
    }

    /// Recompute the prefix-energy index from segments. O(n).
    fn rebuild_cum(&mut self) {
        let mut acc = 0.0;
        let mut prev = self.start;
        for (i, (&e, &w)) in self.ends.iter().zip(&self.watts).enumerate() {
            acc += (e - prev) * w;
            self.cum[i] = acc;
            prev = e;
        }
    }

    /// Extract the sub-trace covering `[t0, t1)` ∩ domain.
    #[must_use]
    pub fn slice(&self, t0: f64, t1: f64) -> PowerTrace {
        let lo = t0.max(self.start);
        let hi = t1.min(self.end());
        let mut out = PowerTrace::new(lo.min(hi));
        if hi <= lo {
            return out;
        }
        let mut idx = self.ends.partition_point(|&e| e <= lo);
        let mut cursor = lo;
        while cursor < hi && idx < self.ends.len() {
            let seg_end = self.ends[idx].min(hi);
            out.push(seg_end - cursor, self.watts[idx]);
            cursor = seg_end;
            idx += 1;
        }
        out
    }

    /// Append another trace, closing any gap between `self.end()` and
    /// `other.start()` with 0 W. `other` must not start before `self.end()`
    /// by more than a rounding tolerance.
    pub fn append(&mut self, other: &PowerTrace) {
        let gap = other.start - self.end();
        assert!(
            gap >= -1e-9,
            "appended trace starts {}s before the current end",
            -gap
        );
        if gap > 1e-12 {
            self.push(gap, 0.0);
        }
        for seg in other.segments() {
            self.push(seg.duration(), seg.watts);
        }
    }

    /// Point-wise sum of several traces. The result spans the union of the
    /// inputs' domains; each input contributes 0 W outside its own domain.
    ///
    /// A k-way merge sweep: every input keeps a cursor, a min-heap yields
    /// the next breakpoint across all inputs, and the running power total
    /// is updated incrementally (with periodic exact resyncs to cap float
    /// drift). O(B·log k) for B total breakpoints over k traces — the
    /// superseded cut-union algorithm ([`reference::sum_cut_union`])
    /// re-evaluated every input at every cut for O(B·k·log s).
    #[must_use]
    pub fn sum(traces: &[&PowerTrace]) -> PowerTrace {
        let inputs: Vec<&PowerTrace> = traces.iter().copied().filter(|t| !t.is_empty()).collect();
        match inputs.len() {
            0 => return PowerTrace::new(0.0),
            1 => return inputs[0].clone(),
            _ => {}
        }
        let start = inputs.iter().map(|t| t.start).fold(f64::INFINITY, f64::min);

        // cursors[i] = number of breakpoints of trace i already consumed;
        // breakpoint 0 is the trace start, breakpoint j>0 is ends[j-1].
        let mut cursors = vec![0usize; inputs.len()];
        let mut cur_w = vec![0.0f64; inputs.len()];
        let mut heap: BinaryHeap<MergeEvent> = inputs
            .iter()
            .enumerate()
            .map(|(i, t)| MergeEvent { t: t.start, trace: i })
            .collect();

        let mut out = PowerTrace::new(start);
        let mut running = 0.0f64;
        let mut prev_t = start;
        let mut since_resync = 0usize;
        while let Some(first) = heap.pop() {
            let te = first.t;
            if te > prev_t {
                out.push(te - prev_t, running);
            }
            // Apply this breakpoint plus any others within the merge
            // tolerance (they would produce sub-epsilon segments).
            let mut pending = Some(first);
            while let Some(ev) = pending.take() {
                let i = ev.trace;
                let t = inputs[i];
                let c = cursors[i];
                let new_w = if c < t.len() { t.watts[c] } else { 0.0 };
                running += new_w - cur_w[i];
                cur_w[i] = new_w;
                cursors[i] = c + 1;
                if c < t.len() {
                    heap.push(MergeEvent { t: t.ends[c], trace: i });
                }
                since_resync += 1;
                if let Some(peek) = heap.peek() {
                    if peek.t <= te + MERGE_EPS {
                        pending = heap.pop();
                    }
                }
            }
            if since_resync >= SUM_RESYNC {
                running = cur_w.iter().sum();
                since_resync = 0;
            }
            prev_t = te;
        }
        out
    }

    /// Re-quantise onto windows of `dt` seconds, replacing each window with
    /// its mean power. Energy is conserved exactly (up to rounding); detail
    /// finer than `dt` is lost. Used to bound the memory of archived
    /// fleet-scale traces.
    ///
    /// One forward sweep shared with [`window_means`](Self::window_means):
    /// O(segments + windows). Window boundaries are `start + i·dt`
    /// (multiplicative), so long traces do not accumulate drift.
    ///
    /// # Panics
    /// If `dt` is not positive.
    #[must_use]
    pub fn coarsen(&self, dt: f64) -> PowerTrace {
        assert!(dt > 0.0 && dt.is_finite(), "bad window {dt}");
        let mut out = PowerTrace::new(self.start);
        if self.is_empty() {
            return out;
        }
        let end = self.end();
        let mut seg = 0usize;
        let mut cursor = self.start;
        let mut w_start = self.start;
        let mut i = 0usize;
        while w_start < end {
            let w_end = (self.start + (i + 1) as f64 * dt).min(end);
            let mut acc = 0.0;
            while seg < self.ends.len() && self.ends[seg] <= w_end {
                acc += (self.ends[seg] - cursor) * self.watts[seg];
                cursor = self.ends[seg];
                seg += 1;
            }
            if seg < self.ends.len() && cursor < w_end {
                acc += (w_end - cursor) * self.watts[seg];
                cursor = w_end;
            }
            out.push(w_end - w_start, acc / (w_end - w_start));
            w_start = w_end;
            i += 1;
        }
        out
    }

    /// Instantaneous point samples every `dt` seconds starting at
    /// `start + dt/2` (midpoint sampling). Used to emulate very fast polling.
    #[must_use]
    pub fn sample_instant(&self, dt: f64) -> Vec<f64> {
        assert!(dt > 0.0);
        let n = (self.duration() / dt).floor() as usize;
        (0..n)
            .map(|i| self.power_at(self.start + (i as f64 + 0.5) * dt))
            .collect()
    }
}

/// Superseded trace algorithms, kept as the oracle for equivalence tests
/// and the "before" side of the bench harness's before/after comparisons.
/// Do not call these from production paths.
pub mod reference {
    use super::{PowerTrace, MERGE_EPS};

    /// The original [`PowerTrace::sum`]: build the sorted union of all
    /// breakpoints, then evaluate every input at every interval midpoint.
    /// O(B·k·log s) for B cuts over k traces of ≤s segments.
    #[must_use]
    pub fn sum_cut_union(traces: &[&PowerTrace]) -> PowerTrace {
        let non_empty: Vec<&&PowerTrace> = traces.iter().filter(|t| !t.is_empty()).collect();
        if non_empty.is_empty() {
            return PowerTrace::new(0.0);
        }
        let start = non_empty
            .iter()
            .map(|t| t.start)
            .fold(f64::INFINITY, f64::min);
        let end = non_empty.iter().map(|t| t.end()).fold(start, f64::max);
        let mut cuts: Vec<f64> = Vec::with_capacity(non_empty.iter().map(|t| t.len()).sum());
        cuts.push(start);
        for t in &non_empty {
            cuts.push(t.start);
            cuts.extend_from_slice(&t.ends);
        }
        cuts.push(end);
        cuts.sort_by(f64::total_cmp);
        cuts.dedup_by(|a, b| (*a - *b).abs() <= MERGE_EPS);

        let mut out = PowerTrace::new(start);
        for pair in cuts.windows(2) {
            let (t0, t1) = (pair[0], pair[1]);
            if t1 - t0 <= 0.0 {
                continue;
            }
            let mid = 0.5 * (t0 + t1);
            let w: f64 = non_empty.iter().map(|t| t.power_at(mid)).sum();
            out.push(t1 - t0, w);
        }
        out
    }

    /// The original [`PowerTrace::energy_between`]: binary search to the
    /// window, then walk its segments. O(log n + segments-in-window).
    #[must_use]
    pub fn energy_between_scan(trace: &PowerTrace, t0: f64, t1: f64) -> f64 {
        if t1 <= t0 || trace.is_empty() {
            return 0.0;
        }
        let lo = t0.max(trace.start);
        let hi = t1.min(trace.end());
        if hi <= lo {
            return 0.0;
        }
        let mut first = trace.ends.partition_point(|&e| e <= lo);
        let mut acc = 0.0;
        let mut cursor = lo;
        while cursor < hi && first < trace.ends.len() {
            let seg_end = trace.ends[first].min(hi);
            acc += (seg_end - cursor) * trace.watts[first];
            cursor = seg_end;
            first += 1;
        }
        acc
    }

    /// The original [`PowerTrace::coarsen`] algorithm: one independent
    /// `mean_power` query per window (binary search + segment walk each
    /// time) instead of a single shared sweep. Window boundaries are
    /// computed multiplicatively, matching the production path, so the two
    /// differ only in algorithm.
    #[must_use]
    pub fn coarsen_per_window(trace: &PowerTrace, dt: f64) -> PowerTrace {
        assert!(dt > 0.0 && dt.is_finite(), "bad window {dt}");
        let mut out = PowerTrace::new(trace.start);
        if trace.is_empty() {
            return out;
        }
        let mut t = trace.start;
        let end = trace.end();
        let mut i = 0usize;
        while t < end {
            let hi = (trace.start + (i + 1) as f64 * dt).min(end);
            let mean = energy_between_scan(trace, t, hi) / (hi - t);
            out.push(hi - t, mean);
            t = hi;
            i += 1;
        }
        out
    }

    /// The original telemetry sampling loop: accumulate `t += dt` and issue
    /// an independent windowed `mean_power` query per sample.
    #[must_use]
    pub fn window_means_per_query(trace: &PowerTrace, t0: f64, dt: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let hi = t0 + (i + 1) as f64 * dt;
                energy_between_scan(trace, hi - dt, hi) / dt
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn empty_trace_basics() {
        let t = PowerTrace::new(5.0);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.start(), 5.0);
        assert_eq!(t.end(), 5.0);
        assert_eq!(t.duration(), 0.0);
        assert_eq!(t.energy(), 0.0);
        assert_eq!(t.power_at(5.0), 0.0);
        assert!(t.max_power().is_none());
    }

    #[test]
    fn push_and_lookup() {
        let t = PowerTrace::from_segments(0.0, [(1.0, 100.0), (2.0, 50.0)]);
        assert_eq!(t.len(), 2);
        assert!(close(t.duration(), 3.0));
        assert_eq!(t.power_at(0.5), 100.0);
        assert_eq!(t.power_at(1.0), 50.0);
        assert_eq!(t.power_at(2.999), 50.0);
        assert_eq!(t.power_at(3.0), 0.0, "right-open domain");
        assert_eq!(t.power_at(-0.1), 0.0);
    }

    #[test]
    fn adjacent_equal_segments_merge() {
        let t = PowerTrace::from_segments(0.0, [(1.0, 100.0), (1.0, 100.0), (1.0, 90.0)]);
        assert_eq!(t.len(), 2);
        assert!(close(t.duration(), 3.0));
        assert!(close(t.energy(), 290.0), "prefix index follows merges");
    }

    #[test]
    fn zero_duration_pushes_ignored() {
        let t = PowerTrace::from_segments(0.0, [(0.0, 42.0), (1.0, 10.0), (0.0, 7.0)]);
        assert_eq!(t.len(), 1);
        assert!(close(t.energy(), 10.0));
    }

    #[test]
    #[should_panic(expected = "bad duration")]
    fn negative_duration_panics() {
        PowerTrace::new(0.0).push(-1.0, 10.0);
    }

    #[test]
    fn energy_and_mean_power() {
        let t = PowerTrace::from_segments(0.0, [(2.0, 100.0), (2.0, 300.0)]);
        assert!(close(t.energy(), 800.0));
        assert!(close(t.mean_power(0.0, 4.0), 200.0));
        assert!(close(t.mean_power(1.0, 3.0), 200.0));
        assert!(close(t.mean_power(3.0, 5.0), 150.0), "half window is off-domain");
        assert_eq!(t.mean_power(2.0, 2.0), 0.0);
    }

    #[test]
    fn energy_between_partial_segments() {
        let t = PowerTrace::from_segments(10.0, [(4.0, 50.0)]);
        assert!(close(t.energy_between(11.0, 13.0), 100.0));
        assert!(close(t.energy_between(0.0, 100.0), 200.0));
        assert_eq!(t.energy_between(20.0, 30.0), 0.0);
        assert_eq!(t.energy_between(13.0, 11.0), 0.0, "inverted window");
    }

    #[test]
    fn energy_between_matches_reference_scan() {
        let mut rng = crate::Rng::new(42);
        let t = PowerTrace::from_segments(
            3.0,
            (0..500).map(|_| (rng.uniform(0.01, 2.0), rng.uniform(0.0, 2000.0))),
        );
        for _ in 0..200 {
            let a = rng.uniform(0.0, t.end() + 5.0);
            let b = rng.uniform(0.0, t.end() + 5.0);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let fast = t.energy_between(lo, hi);
            let slow = reference::energy_between_scan(&t, lo, hi);
            assert!(
                (fast - slow).abs() <= 1e-9 * (1.0 + slow.abs()),
                "window [{lo}, {hi}): prefix {fast} vs scan {slow}"
            );
        }
    }

    #[test]
    fn shift_preserves_energy_and_shape() {
        let mut t = PowerTrace::from_segments(0.0, [(1.0, 10.0), (1.0, 20.0)]);
        let e = t.energy();
        t.shift(100.0);
        assert_eq!(t.start(), 100.0);
        assert!(close(t.energy(), e));
        assert_eq!(t.power_at(100.5), 10.0);
    }

    #[test]
    fn scale_and_offset() {
        let mut t = PowerTrace::from_segments(0.0, [(1.0, 10.0)]);
        t.scale_power(3.0);
        t.add_constant(5.0);
        assert_eq!(t.power_at(0.5), 35.0);
        assert!(close(t.energy(), 35.0), "prefix index tracks mutation");
    }

    #[test]
    fn slice_matches_lookup() {
        let t = PowerTrace::from_segments(0.0, [(1.0, 10.0), (1.0, 20.0), (1.0, 30.0)]);
        let s = t.slice(0.5, 2.5);
        assert!(close(s.start(), 0.5));
        assert!(close(s.end(), 2.5));
        assert_eq!(s.power_at(0.75), 10.0);
        assert_eq!(s.power_at(1.5), 20.0);
        assert_eq!(s.power_at(2.25), 30.0);
        assert!(close(s.energy(), t.energy_between(0.5, 2.5)));
    }

    #[test]
    fn slice_outside_domain_is_empty() {
        let t = PowerTrace::from_segments(0.0, [(1.0, 10.0)]);
        assert!(t.slice(5.0, 6.0).is_empty());
    }

    #[test]
    fn append_with_gap_inserts_zero_power() {
        let mut a = PowerTrace::from_segments(0.0, [(1.0, 10.0)]);
        let b = PowerTrace::from_segments(2.0, [(1.0, 20.0)]);
        a.append(&b);
        assert!(close(a.end(), 3.0));
        assert_eq!(a.power_at(1.5), 0.0);
        assert_eq!(a.power_at(2.5), 20.0);
    }

    #[test]
    #[should_panic(expected = "before the current end")]
    fn append_overlapping_panics() {
        let mut a = PowerTrace::from_segments(0.0, [(2.0, 10.0)]);
        let b = PowerTrace::from_segments(1.0, [(1.0, 20.0)]);
        a.append(&b);
    }

    #[test]
    fn sum_of_offset_traces() {
        let a = PowerTrace::from_segments(0.0, [(2.0, 100.0)]);
        let b = PowerTrace::from_segments(1.0, [(2.0, 50.0)]);
        let s = PowerTrace::sum(&[&a, &b]);
        assert!(close(s.start(), 0.0));
        assert!(close(s.end(), 3.0));
        assert_eq!(s.power_at(0.5), 100.0);
        assert_eq!(s.power_at(1.5), 150.0);
        assert_eq!(s.power_at(2.5), 50.0);
        assert!(close(s.energy(), a.energy() + b.energy()));
    }

    #[test]
    fn sum_ignores_empty_traces() {
        let a = PowerTrace::from_segments(0.0, [(1.0, 10.0)]);
        let e = PowerTrace::new(42.0);
        let s = PowerTrace::sum(&[&a, &e]);
        assert!(close(s.energy(), 10.0));
        assert!(close(s.start(), 0.0));
    }

    #[test]
    fn sum_with_interior_gaps_matches_cut_union() {
        // a: [0, 2), gap, b: [5, 6) — the merged trace must carry a 0 W
        // bridge over [2, 5) exactly like the reference.
        let a = PowerTrace::from_segments(0.0, [(2.0, 100.0)]);
        let b = PowerTrace::from_segments(5.0, [(1.0, 40.0)]);
        let fast = PowerTrace::sum(&[&a, &b]);
        let slow = reference::sum_cut_union(&[&a, &b]);
        assert_eq!(fast, slow);
        assert_eq!(fast.power_at(3.0), 0.0);
        assert!(close(fast.end(), 6.0));
    }

    #[test]
    fn sum_of_many_random_traces_matches_cut_union() {
        let mut rng = crate::Rng::new(9);
        let traces: Vec<PowerTrace> = (0..16)
            .map(|_| {
                let start = rng.uniform(0.0, 10.0);
                PowerTrace::from_segments(
                    start,
                    (0..rng.index(60) + 1)
                        .map(|_| (rng.uniform(0.01, 3.0), rng.uniform(0.0, 2500.0)))
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        let refs: Vec<&PowerTrace> = traces.iter().collect();
        let fast = PowerTrace::sum(&refs);
        let slow = reference::sum_cut_union(&refs);
        assert!(close(fast.start(), slow.start()));
        assert!(close(fast.end(), slow.end()));
        assert!(close(fast.energy(), slow.energy()));
        // Point-wise agreement at off-breakpoint probes.
        for _ in 0..500 {
            let t = rng.uniform(fast.start(), fast.end());
            let (pf, ps) = (fast.power_at(t), slow.power_at(t));
            assert!(
                (pf - ps).abs() <= 1e-6 * (1.0 + ps.abs()),
                "power_at({t}): merge {pf} vs cut-union {ps}"
            );
        }
    }

    #[test]
    fn sample_instant_counts_and_values() {
        let t = PowerTrace::from_segments(0.0, [(1.0, 10.0), (1.0, 20.0)]);
        let s = t.sample_instant(0.5);
        assert_eq!(s, vec![10.0, 10.0, 20.0, 20.0]);
    }

    #[test]
    fn window_means_match_per_query_reference() {
        let mut rng = crate::Rng::new(33);
        let t = PowerTrace::from_segments(
            2.5,
            (0..800).map(|_| (rng.uniform(0.01, 1.0), rng.uniform(0.0, 2000.0))),
        );
        let (t0, dt, n) = (t.start(), 0.7, ((t.duration() / 0.7) as usize) + 3);
        let fast = t.window_means(t0, dt, n);
        let slow = reference::window_means_per_query(&t, t0, dt, n);
        assert_eq!(fast.len(), slow.len());
        for (i, (f, s)) in fast.iter().zip(&slow).enumerate() {
            assert!(
                (f - s).abs() <= 1e-9 * (1.0 + s.abs()),
                "window {i}: sweep {f} vs per-query {s}"
            );
        }
    }

    #[test]
    fn window_means_outside_domain_are_zero() {
        let t = PowerTrace::from_segments(10.0, [(2.0, 100.0)]);
        let means = t.window_means(0.0, 1.0, 16);
        assert_eq!(means[0], 0.0, "before the domain");
        assert!(close(means[10], 100.0));
        assert!(close(means[11], 100.0));
        assert_eq!(means[14], 0.0, "after the domain");
    }

    #[test]
    fn coarsen_conserves_energy_and_bounds_segments() {
        let mut t = PowerTrace::new(0.0);
        for i in 0..10_000 {
            t.push(0.01, if i % 2 == 0 { 100.0 } else { 350.0 });
        }
        let c = t.coarsen(2.0);
        assert!(c.len() <= (t.duration() / 2.0).ceil() as usize);
        assert!((c.energy() - t.energy()).abs() < 1e-6 * t.energy());
        assert!((c.duration() - t.duration()).abs() < 1e-9);
        // Fast alternation collapses to the mean level.
        assert!((c.power_at(50.0) - 225.0).abs() < 1.0);
    }

    #[test]
    fn coarsen_matches_per_window_reference() {
        let mut rng = crate::Rng::new(77);
        let t = PowerTrace::from_segments(
            1.0,
            (0..600).map(|_| (rng.uniform(0.01, 2.0), rng.uniform(0.0, 2000.0))),
        );
        for dt in [0.05, 0.3, 2.0, 1000.0] {
            let fast = t.coarsen(dt);
            let slow = reference::coarsen_per_window(&t, dt);
            assert_eq!(fast.len(), slow.len(), "dt={dt}");
            assert!(close(fast.energy(), slow.energy()), "dt={dt}");
            for (f, s) in fast.segments().zip(slow.segments()) {
                assert!((f.watts - s.watts).abs() <= 1e-9 * (1.0 + s.watts.abs()));
                assert!((f.t1 - s.t1).abs() <= 1e-6, "dt={dt}");
            }
        }
    }

    #[test]
    fn coarsen_of_empty_trace_is_empty() {
        assert!(PowerTrace::new(3.0).coarsen(1.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "bad window")]
    fn coarsen_rejects_zero_window() {
        let _ = PowerTrace::from_segments(0.0, [(1.0, 1.0)]).coarsen(0.0);
    }

    #[test]
    fn long_trace_no_drift() {
        let mut t = PowerTrace::new(0.0);
        for _ in 0..100_000 {
            t.push(0.01, 123.0);
            t.push(0.01, 7.0);
        }
        assert!((t.duration() - 2000.0).abs() < 1e-6);
        assert!((t.energy() - (123.0 + 7.0) * 1000.0).abs() < 1e-3);
    }
}
