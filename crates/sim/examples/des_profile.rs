//! Ad-hoc throughput breakdown for the calendar queue (fill vs drain).
use std::time::Instant;
use vpp_sim::des::reference::HeapQueue;
use vpp_sim::{EventQueue, Rng};

fn main() {
    const N: usize = 1_000_000;
    let mut rng = Rng::new(42);
    let at: Vec<f64> = (0..N).map(|_| rng.uniform(0.0, 1e6)).collect();
    for _ in 0..3 {
        let t0 = Instant::now();
        let mut q: EventQueue<u32> = EventQueue::new();
        for (i, &t) in at.iter().enumerate() {
            q.schedule(t, i as u32);
        }
        let fill = t0.elapsed();
        let t1 = Instant::now();
        let mut n = 0u64;
        while q.next().is_some() {
            n += 1;
        }
        let drain = t1.elapsed();
        println!(
            "cal  fill {:>7.1} ns/ev   drain {:>7.1} ns/ev  (n={n})",
            fill.as_nanos() as f64 / N as f64,
            drain.as_nanos() as f64 / N as f64
        );
    }
    for _ in 0..2 {
        let t0 = Instant::now();
        let mut q: HeapQueue<u32> = HeapQueue::new();
        for (i, &t) in at.iter().enumerate() {
            q.schedule(t, i as u32);
        }
        let fill = t0.elapsed();
        let t1 = Instant::now();
        let mut n = 0u64;
        while q.next().is_some() {
            n += 1;
        }
        let drain = t1.elapsed();
        println!(
            "heap fill {:>7.1} ns/ev   drain {:>7.1} ns/ev  (n={n})",
            fill.as_nanos() as f64 / N as f64,
            drain.as_nanos() as f64 / N as f64
        );
    }

    // Hold model: pop one, push one at (popped time + increment), queue
    // pinned at N pending.
    const HOLD: usize = 2_000_000;
    let inc: Vec<f64> = {
        let mut rng = Rng::new(9);
        (0..8192).map(|_| rng.uniform(0.0, 2.0)).collect()
    };
    {
        let mut q: EventQueue<u32> = EventQueue::new();
        for (i, &t) in at.iter().enumerate() {
            q.schedule(t % 2.0, i as u32);
        }
        let t0 = Instant::now();
        for k in 0..HOLD {
            let (t, e) = q.next().unwrap();
            q.schedule(t + inc[k & 8191], e);
        }
        println!(
            "cal  hold {:>7.1} ns/pair (len={})",
            t0.elapsed().as_nanos() as f64 / HOLD as f64,
            q.len()
        );
    }
    {
        let mut q: HeapQueue<u32> = HeapQueue::new();
        for (i, &t) in at.iter().enumerate() {
            q.schedule(t % 2.0, i as u32);
        }
        let t0 = Instant::now();
        for k in 0..HOLD {
            let (t, e) = q.next().unwrap();
            q.schedule(t + inc[k & 8191], e);
        }
        println!(
            "heap hold {:>7.1} ns/pair (len={})",
            t0.elapsed().as_nanos() as f64 / HOLD as f64,
            q.len()
        );
    }
}
