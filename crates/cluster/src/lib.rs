//! Multi-node job execution.
//!
//! Executes a `vpp-dft` plan on modelled Perlmutter nodes: one MPI rank per
//! GPU, four ranks per node (§III-B), NCCL collectives over NVLink within a
//! node and Slingshot between nodes, per-board manufacturing variability
//! desynchronising ranks between collectives, and GPU power caps applied
//! through the node's `nvidia-smi`-like interface.
//!
//! The output is one [`vpp_node::ComponentTraces`] per node — exactly the
//! channels the paper's monitoring stack records — plus the job runtime and
//! energy.

pub mod job;
pub mod network;

pub use job::{execute, JobResult, JobSpec, Straggler};
pub use network::NetworkModel;
