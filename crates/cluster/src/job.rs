//! The job executor: replay a per-rank plan on modelled nodes.

use crate::network::NetworkModel;
use vpp_dft::{CollectiveKind, Op, PhaseKind, ScfPlan};
use vpp_gpu::{Kernel, KernelKind};
use vpp_node::{ComponentTraces, CpuModel, MemoryModel, NodeInstance};
use vpp_sim::{PowerTrace, Rng};
use vpp_substrate::{span, trace};

/// Fault injection: one underperforming node (failing DIMM, thermal issue,
/// congested NIC) — what the paper's five-repeat / DGEMM-screen protocol
/// exists to catch (§III-B.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Straggler {
    /// Index of the slow node within the allocation.
    pub node: usize,
    /// Multiplier on that node's GPU kernel durations (> 1 = slower).
    pub slowdown: f64,
}

/// Job configuration: where and how a plan runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobSpec {
    /// Allocated nodes (4 GPUs / MPI ranks each).
    pub nodes: usize,
    /// GPU power limit applied via the node's `nvidia-smi` analogue;
    /// `None` = default 400 W.
    pub gpu_power_cap_w: Option<f64>,
    /// Fleet seed: selects which physical nodes the job lands on.
    pub seed: u64,
    /// Job start time on the shared clock, seconds.
    pub start_s: f64,
    /// Startup stage (input parsing, wavefunction init), seconds.
    pub init_host_s: f64,
    /// Optional injected straggler node.
    pub straggler: Option<Straggler>,
    /// OS-noise amplitude: each op on each rank is stretched by up to this
    /// fraction (uniform, per-rank deterministic). 0 = no jitter.
    pub os_jitter: f64,
    /// Fault injection for regression-triage testing: stretch every
    /// compute op (GPU and host, not collectives) inside phases of the
    /// given kind by the factor. `vpp trace diff` must name exactly this
    /// phase as the culprit.
    pub phase_slowdown: Option<(PhaseKind, f64)>,
    /// The communication-side counterpart of `phase_slowdown`: stretch
    /// every collective's network time (not compute, not waits) by the
    /// factor. `vpp trace diff` must see `job.collective` move — and
    /// nothing but communication — so triage can tell a network
    /// regression from a compute one.
    pub collective_slowdown: Option<f64>,
}

impl JobSpec {
    /// A default job on `nodes` nodes.
    #[must_use]
    pub fn new(nodes: usize) -> Self {
        assert!(nodes > 0, "need at least one node");
        Self {
            nodes,
            gpu_power_cap_w: None,
            seed: 0x5641_5350, // "VASP"
            start_s: 0.0,
            init_host_s: 6.0,
            straggler: None,
            os_jitter: 0.0,
            phase_slowdown: None,
            collective_slowdown: None,
        }
    }
}

/// Outcome of one job execution.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Wall-clock runtime, seconds (the paper's performance metric).
    pub runtime_s: f64,
    /// Monitoring channels for each allocated node.
    pub node_traces: Vec<ComponentTraces>,
}

impl JobResult {
    /// Total energy-to-solution across all nodes, joules (Figs. 7, 8).
    #[must_use]
    pub fn energy_j(&self) -> f64 {
        self.node_traces.iter().map(|c| c.node.energy()).sum()
    }

    /// Per-node mean power over the run, watts.
    #[must_use]
    pub fn mean_node_power_w(&self) -> f64 {
        if self.node_traces.is_empty() || self.runtime_s <= 0.0 {
            return 0.0;
        }
        self.energy_j() / self.runtime_s / self.node_traces.len() as f64
    }
}

/// Execute `plan` under `spec` over `network`.
#[must_use]
pub fn execute(plan: &ScfPlan, spec: &JobSpec, network: &NetworkModel) -> JobResult {
    assert!(spec.nodes > 0);
    let fleet = Rng::new(spec.seed);
    let mut nodes: Vec<NodeInstance> = (0..spec.nodes)
        .map(|i| NodeInstance::sample(&mut fleet.fork(i as u64)))
        .collect();
    if let Some(cap) = spec.gpu_power_cap_w {
        for n in &mut nodes {
            n.set_gpu_power_limit(cap);
        }
    }
    let gpn = nodes[0].gpus.len();
    let ranks = spec.nodes * gpn;

    let mut gpu_traces: Vec<PowerTrace> =
        (0..ranks).map(|_| PowerTrace::new(spec.start_s)).collect();
    let mut cpu_traces: Vec<PowerTrace> =
        (0..spec.nodes).map(|_| PowerTrace::new(spec.start_s)).collect();
    let mut mem_traces: Vec<PowerTrace> =
        (0..spec.nodes).map(|_| PowerTrace::new(spec.start_s)).collect();
    let mut clock: Vec<f64> = vec![spec.start_s; ranks];

    assert!(
        (0.0..1.0).contains(&spec.os_jitter),
        "os_jitter must be in [0, 1)"
    );
    if let Some(s) = spec.straggler {
        assert!(s.node < spec.nodes, "straggler node out of range");
        assert!(s.slowdown >= 1.0, "straggler must not speed up");
    }
    if let Some((_, f)) = spec.phase_slowdown {
        assert!(f.is_finite() && f > 0.0, "phase slowdown factor must be positive");
    }
    if let Some(f) = spec.collective_slowdown {
        assert!(
            f.is_finite() && f > 0.0,
            "collective slowdown factor must be positive"
        );
    }
    let collective_factor = spec.collective_slowdown.unwrap_or(1.0);
    // Op-index → slowdown factor for the injected phase perturbation. The
    // injected init op at seq 0 precedes the plan, so plan op `i` runs at
    // sequence `i + 1`.
    let phase_factor = |seq: usize| -> f64 {
        let Some((kind, f)) = spec.phase_slowdown else {
            return 1.0;
        };
        let Some(i) = seq.checked_sub(1) else {
            return 1.0;
        };
        if plan
            .phases
            .iter()
            .any(|ph| ph.kind == kind && ph.start <= i && i < ph.end)
        {
            f
        } else {
            1.0
        }
    };
    let mut jitter_rngs: Vec<Rng> = (0..ranks)
        .map(|r| Rng::new(spec.seed ^ 0x6a69_7474).fork(r as u64))
        .collect();
    let stretch = |r: usize, rngs: &mut Vec<Rng>| -> f64 {
        let mut f = 1.0;
        if let Some(s) = spec.straggler {
            if r / gpn == s.node {
                f *= s.slowdown;
            }
        }
        if spec.os_jitter > 0.0 {
            f *= 1.0 + spec.os_jitter * rngs[r].f64();
        }
        f
    };

    let init = Op::Host {
        duration_s: spec.init_host_s,
        cpu_active: 0.30,
        mem_active: 0.40,
    };

    let mut job_span = span!(
        "job.execute",
        workload = plan.name.clone(),
        nodes = spec.nodes,
        ranks = ranks,
        ops = plan.ops.len(),
    );
    if let Some(s) = spec.straggler {
        trace::mark_with("job.straggler", || {
            vec![("node", s.node.into()), ("slowdown", s.slowdown.into())]
        });
    }
    let tracing = trace::enabled();
    // Phase spans follow the plan's phase table; the injected init op at
    // sequence 0 shifts every plan op index by one. `sim_t0`/`sim_t1`
    // bracket each phase on the simulated clock (min at entry, max at
    // exit) so traced boundaries can be compared with changepoints found
    // on the power signal alone. Each phase also snapshots the fleet's
    // accumulated component energy at entry so its exit can record the
    // exact energy attributed to the phase's ops (`energy_j`) — the
    // quantity the flight-recorder baselines and `vpp trace diff` track.
    struct OpenPhase {
        guard: trace::SpanGuard,
        end: usize,
        energy0: f64,
        cpu_ends0: Vec<f64>,
        sim_t0: f64,
    }
    let mut open_phase: Option<OpenPhase> = None;
    let clock_min = |c: &[f64]| c.iter().copied().fold(f64::INFINITY, f64::min);
    let clock_max = |c: &[f64]| c.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let acc_energy = |gpu: &[PowerTrace], cpu: &[PowerTrace], mem: &[PowerTrace]| -> f64 {
        gpu.iter()
            .chain(cpu.iter())
            .chain(mem.iter())
            .map(PowerTrace::energy)
            .sum()
    };
    // Energy attributed to the open phase: growth of the accumulated
    // GPU/CPU/DDR energy since phase entry, plus peripherals over each
    // node's locally elapsed span. Exact (not a window estimate): every
    // queried interval ends at a trace's current end.
    let phase_energy = |ph: &OpenPhase,
                        gpu: &[PowerTrace],
                        cpu: &[PowerTrace],
                        mem: &[PowerTrace],
                        nodes: &[NodeInstance]| {
        let periph: f64 = nodes
            .iter()
            .zip(cpu.iter().zip(&ph.cpu_ends0))
            .map(|(n, (c, e0))| (c.end() - e0) * n.periph_active_w)
            .sum();
        acc_energy(gpu, cpu, mem) - ph.energy0 + periph
    };
    // Duration-weighted power residency: every GPU power segment lands in
    // the `power_watts` histogram with its simulated duration (in µs) as
    // the observation count, so bucket mass measures GPU-*time* share —
    // the quantity behind the paper's high-power-mode fraction — rather
    // than segment counts. Recorded at each gpu_traces push, so a live
    // `/metrics` scrape reconstructs the residency mid-run.
    let record_power = |dur_s: f64, watts: f64| {
        if !tracing {
            return;
        }
        let us = (dur_s * 1e6).round();
        if us >= 1.0 {
            trace::histogram_count("power_watts", watts, us as u64);
        }
    };

    for (seq, op) in std::iter::once(&init).chain(plan.ops.iter()).enumerate() {
        if tracing {
            if let Some(open) = open_phase.as_ref() {
                if seq >= open.end {
                    let mut ph = open_phase.take().unwrap();
                    let e = phase_energy(&ph, &gpu_traces, &cpu_traces, &mem_traces, &nodes);
                    let t1 = clock_max(&clock);
                    ph.guard.record("sim_t1", t1);
                    ph.guard.record("energy_j", e);
                    trace::histogram("phase_sim_seconds", t1 - ph.sim_t0);
                }
            }
            if open_phase.is_none() {
                let next = if seq == 0 {
                    (!plan.phases.is_empty()).then(|| (PhaseKind::Init.name(), 0, 1))
                } else {
                    plan.phases
                        .iter()
                        .find(|ph| ph.start + 1 == seq)
                        .map(|ph| (ph.kind.name(), ph.index, ph.end + 1))
                };
                if let Some((name, index, end)) = next {
                    let t0 = clock_min(&clock);
                    let g = trace::SpanGuard::open(name, || {
                        vec![("index", index.into()), ("sim_t0", t0.into())]
                    });
                    open_phase = Some(OpenPhase {
                        guard: g,
                        end,
                        energy0: acc_energy(&gpu_traces, &cpu_traces, &mem_traces),
                        cpu_ends0: cpu_traces.iter().map(PowerTrace::end).collect(),
                        sim_t0: t0,
                    });
                }
            }
            trace::counter(
                match op {
                    Op::Gpu(_) => "job.ops.gpu",
                    Op::Host { .. } => "job.ops.host",
                    Op::Collective { .. } => "job.ops.collective",
                },
                1,
            );
        }
        let pf = phase_factor(seq);
        match op {
            Op::Gpu(kernel) => {
                for r in 0..ranks {
                    let gpu = &nodes[r / gpn].gpus[r % gpn];
                    let ex = gpu.execute(kernel);
                    let dur = ex.duration_s * stretch(r, &mut jitter_rngs) * pf;
                    gpu_traces[r].push(dur, ex.watts);
                    record_power(dur, ex.watts);
                    clock[r] += dur;
                }
                for (n, node) in nodes.iter().enumerate() {
                    // The host drives launch queues while GPUs compute; use
                    // the node's first rank as the node-local timeline.
                    let dur = nodes[n].gpus[0].execute(kernel).duration_s * pf;
                    cpu_traces[n].push(dur, node.cpu.power(CpuModel::GPU_HOST_DRIVE));
                    mem_traces[n].push(dur, node.mem.power(MemoryModel::GPU_HOST_DRIVE));
                }
            }
            Op::Host {
                duration_s,
                cpu_active,
                mem_active,
            } => {
                let dur = duration_s * pf;
                for r in 0..ranks {
                    let gpu = &nodes[r / gpn].gpus[r % gpn];
                    gpu_traces[r].push(dur, gpu.idle_w());
                    record_power(dur, gpu.idle_w());
                    clock[r] += dur;
                }
                for (n, node) in nodes.iter().enumerate() {
                    cpu_traces[n].push(dur, node.cpu.power(*cpu_active));
                    mem_traces[n].push(dur, node.mem.power(*mem_active));
                }
            }
            Op::Collective { bytes, kind } => {
                let t_sync = clock.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let comm_s =
                    network.collective_time(*kind, *bytes, spec.nodes, gpn) * collective_factor;
                let mut cspan = trace::SpanGuard::open("job.collective", || {
                    let kind_name = match kind {
                        CollectiveKind::AllReduce => "all_reduce",
                        CollectiveKind::Broadcast => "broadcast",
                        CollectiveKind::AllToAll => "all_to_all",
                    };
                    vec![("bytes", (*bytes).into()), ("kind", kind_name.into())]
                });
                cspan.record("comm_s", comm_s);
                cspan.record("sim_wait_s", t_sync - clock_min(&clock));
                // The pure-communication sim window (waits excluded):
                // aggregated `job.collective` sim_s depends only on the
                // network model, so trace-diff triage can pin a
                // communication regression to exactly this row.
                cspan.record("sim_t0", t_sync);
                cspan.record("sim_t1", t_sync + comm_s);
                for r in 0..ranks {
                    let gpu = &nodes[r / gpn].gpus[r % gpn];
                    let wait = t_sync - clock[r];
                    if wait > 0.0 {
                        gpu_traces[r].push(wait, gpu.idle_w());
                        record_power(wait, gpu.idle_w());
                    }
                    if comm_s > 0.0 {
                        let k = Kernel::new(KernelKind::NcclComm, *bytes, comm_s);
                        let p = gpu.uncapped_power(&k).min(gpu.effective_ceiling());
                        gpu_traces[r].push(comm_s, p);
                        record_power(comm_s, p);
                    }
                    clock[r] = t_sync + comm_s;
                }
                for (n, node) in nodes.iter().enumerate() {
                    // Host side: progress engine + NIC staging for the
                    // node-local span of this collective.
                    let span = clock[n * gpn] - cpu_traces[n].end();
                    if span > 0.0 {
                        cpu_traces[n].push(span, node.cpu.power(0.12));
                        mem_traces[n].push(span, node.mem.power(0.35));
                    }
                }
            }
        }
    }

    // Final barrier: the job ends when the slowest rank finishes. Pad
    // every channel out to the barrier first, so the last phase's energy
    // attribution includes the barrier-wait idle energy.
    let t_end = clock.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    job_span.record("runtime_s", t_end - spec.start_s);
    for r in 0..ranks {
        let pad = t_end - clock[r];
        if pad > 0.0 {
            let gpu = &nodes[r / gpn].gpus[r % gpn];
            gpu_traces[r].push(pad, gpu.idle_w());
            record_power(pad, gpu.idle_w());
        }
    }
    for (n, node) in nodes.iter().enumerate() {
        let pad = t_end - cpu_traces[n].end();
        if pad > 0.0 {
            cpu_traces[n].push(pad, node.cpu.power(0.0));
        }
        let pad = t_end - mem_traces[n].end();
        if pad > 0.0 {
            mem_traces[n].push(pad, node.mem.power(0.0));
        }
    }
    if let Some(mut ph) = open_phase.take() {
        let e = phase_energy(&ph, &gpu_traces, &cpu_traces, &mem_traces, &nodes);
        ph.guard.record("sim_t1", t_end);
        ph.guard.record("energy_j", e);
        trace::histogram("phase_sim_seconds", t_end - ph.sim_t0);
    }

    // Assemble per-node channels (peripherals active for the job's span).
    let mut node_traces = Vec::with_capacity(spec.nodes);
    let mut gpu_iter = gpu_traces.into_iter();
    for (n, node) in nodes.iter().enumerate() {
        let gpus: Vec<PowerTrace> = (0..gpn).map(|_| gpu_iter.next().unwrap()).collect();
        let periph = PowerTrace::from_segments(
            spec.start_s,
            [(t_end - spec.start_s, node.periph_active_w)],
        );
        node_traces.push(ComponentTraces::assemble(
            cpu_traces[n].clone(),
            mem_traces[n].clone(),
            gpus,
            periph,
        ));
    }

    JobResult {
        runtime_s: t_end - spec.start_s,
        node_traces,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpp_dft::{build_plan, CostModel, Incar, ParallelLayout, Supercell, SystemParams};

    fn si_plan(atoms: usize, nodes: usize) -> ScfPlan {
        let mut deck = Incar::default_deck();
        deck.nelm = 10;
        let p = SystemParams::derive(&Supercell::silicon(atoms), &deck);
        build_plan(&p, &ParallelLayout::nodes(nodes), &CostModel::calibrated())
    }

    fn quick_spec(nodes: usize) -> JobSpec {
        let mut s = JobSpec::new(nodes);
        s.init_host_s = 1.0;
        s
    }

    #[test]
    fn single_node_job_produces_traces() {
        let plan = si_plan(64, 1);
        let res = execute(&plan, &quick_spec(1), &NetworkModel::perlmutter());
        assert_eq!(res.node_traces.len(), 1);
        assert_eq!(res.node_traces[0].gpus.len(), 4);
        assert!(res.runtime_s > 1.0);
        assert!(res.energy_j() > 0.0);
    }

    #[test]
    fn all_channels_span_the_full_runtime() {
        let plan = si_plan(64, 2);
        let res = execute(&plan, &quick_spec(2), &NetworkModel::perlmutter());
        for c in &res.node_traces {
            assert!((c.node.duration() - res.runtime_s).abs() < 1e-6);
            assert!((c.cpu.duration() - res.runtime_s).abs() < 1e-6);
            assert!((c.mem.duration() - res.runtime_s).abs() < 1e-6);
            for g in &c.gpus {
                assert!((g.duration() - res.runtime_s).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn execution_is_deterministic() {
        let plan = si_plan(64, 1);
        let a = execute(&plan, &quick_spec(1), &NetworkModel::perlmutter());
        let b = execute(&plan, &quick_spec(1), &NetworkModel::perlmutter());
        assert_eq!(a.runtime_s, b.runtime_s);
        assert_eq!(a.node_traces[0].node, b.node_traces[0].node);
    }

    #[test]
    fn different_seeds_select_different_nodes() {
        let plan = si_plan(64, 1);
        let mut s1 = quick_spec(1);
        let mut s2 = quick_spec(1);
        s1.seed = 1;
        s2.seed = 2;
        let a = execute(&plan, &s1, &NetworkModel::perlmutter());
        let b = execute(&plan, &s2, &NetworkModel::perlmutter());
        assert_ne!(
            a.node_traces[0].node.energy(),
            b.node_traces[0].node.energy()
        );
    }

    #[test]
    fn more_nodes_run_faster_but_less_than_linearly() {
        let p1 = si_plan(256, 1);
        let p4 = si_plan(256, 4);
        let net = NetworkModel::perlmutter();
        let r1 = execute(&p1, &quick_spec(1), &net);
        let r4 = execute(&p4, &quick_spec(4), &net);
        assert!(r4.runtime_s < r1.runtime_s, "speedup expected");
        assert!(
            r4.runtime_s > r1.runtime_s / 4.0,
            "perfect scaling is impossible with serial terms"
        );
    }

    #[test]
    fn power_cap_slows_and_caps_power() {
        // Use a large saturating workload so the cap binds.
        let plan = si_plan(1024, 1);
        let net = NetworkModel::perlmutter();
        let base = execute(&plan, &quick_spec(1), &net);
        let mut capped_spec = quick_spec(1);
        capped_spec.gpu_power_cap_w = Some(200.0);
        let capped = execute(&plan, &capped_spec, &net);
        assert!(capped.runtime_s > base.runtime_s, "throttling slows the job");
        let max_gpu = capped.node_traces[0]
            .gpus
            .iter()
            .filter_map(|g| g.max_power())
            .fold(0.0, f64::max);
        assert!(max_gpu <= 200.0 + 1e-9, "max GPU power {max_gpu} over cap");
    }

    #[test]
    fn node_power_stays_under_tdp() {
        let plan = si_plan(512, 1);
        let res = execute(&plan, &quick_spec(1), &NetworkModel::perlmutter());
        let peak = res.node_traces[0].node.max_power().unwrap();
        assert!(peak < 2350.0, "node peak {peak} exceeds TDP");
        assert!(peak > 600.0, "a 512-atom run should load the node: {peak}");
    }

    #[test]
    fn gpus_dominate_node_power_for_big_systems() {
        // Fig. 3: >70 % of node power from the four GPUs for hot workloads.
        let plan = si_plan(1024, 1);
        let res = execute(&plan, &quick_spec(1), &NetworkModel::perlmutter());
        let c = &res.node_traces[0];
        let t0 = c.node.start() + 2.0;
        let t1 = c.node.end() - 2.0;
        let gpu_e: f64 = c.gpus.iter().map(|g| g.energy_between(t0, t1)).sum();
        let node_e = c.node.energy_between(t0, t1);
        let share = gpu_e / node_e;
        assert!(share > 0.60, "GPU share = {share}");
    }

    #[test]
    fn straggler_slows_the_whole_job() {
        // One slow node gates every collective: the job runtime follows the
        // straggler, and healthy nodes wait at barriers (the §III-B.1
        // screening protocol exists to catch exactly this).
        let plan = si_plan(256, 2);
        let net = NetworkModel::perlmutter();
        let base = execute(&plan, &quick_spec(2), &net);
        let mut spec = quick_spec(2);
        spec.straggler = Some(Straggler {
            node: 1,
            slowdown: 1.30,
        });
        let slow = execute(&plan, &spec, &net);
        let ratio = slow.runtime_s / base.runtime_s;
        assert!(
            (1.20..1.40).contains(&ratio),
            "30% straggler should gate the job: ratio {ratio}"
        );
        // The healthy node idles at barriers: its mean power drops.
        let healthy_mean = |r: &JobResult| {
            r.node_traces[0].node.energy() / r.node_traces[0].node.duration()
        };
        assert!(healthy_mean(&slow) < healthy_mean(&base));
    }

    #[test]
    #[should_panic(expected = "straggler node out of range")]
    fn straggler_index_is_validated() {
        let plan = si_plan(64, 1);
        let mut spec = quick_spec(1);
        spec.straggler = Some(Straggler {
            node: 5,
            slowdown: 2.0,
        });
        let _ = execute(&plan, &spec, &NetworkModel::perlmutter());
    }

    #[test]
    fn os_jitter_stretches_runtime_deterministically() {
        let plan = si_plan(64, 1);
        let net = NetworkModel::perlmutter();
        let base = execute(&plan, &quick_spec(1), &net);
        let mut spec = quick_spec(1);
        spec.os_jitter = 0.05;
        let a = execute(&plan, &spec, &net);
        let b = execute(&plan, &spec, &net);
        assert_eq!(a.runtime_s, b.runtime_s, "jitter must be seeded");
        assert!(a.runtime_s > base.runtime_s);
        assert!(a.runtime_s < base.runtime_s * 1.10, "5% jitter, ≤10% effect");
    }

    #[test]
    fn zero_jitter_is_bitwise_identical_to_default() {
        let plan = si_plan(64, 1);
        let net = NetworkModel::perlmutter();
        let base = execute(&plan, &quick_spec(1), &net);
        let mut spec = quick_spec(1);
        spec.os_jitter = 0.0;
        spec.straggler = None;
        let same = execute(&plan, &spec, &net);
        assert_eq!(base.runtime_s.to_bits(), same.runtime_s.to_bits());
    }

    #[test]
    fn executor_emits_phase_spans_matching_the_plan() {
        let plan = si_plan(64, 1);
        let session = vpp_substrate::trace::session(1 << 16);
        let res = execute(&plan, &quick_spec(1), &NetworkModel::perlmutter());
        let report = session.finish();
        assert!(report.well_formed().is_ok(), "{:?}", report.well_formed());

        let spans = report.spans();
        let root = spans.iter().find(|s| s.name == "job.execute").unwrap();
        assert!(
            (root.field_f64("runtime_s").unwrap() - res.runtime_s).abs() < 1e-9,
            "traced runtime must equal the result"
        );

        let iters: Vec<_> = spans.iter().filter(|s| s.name == "phase.scf_iter").collect();
        assert_eq!(iters.len(), plan.iterations);
        // Every phase span nests under the job span and carries sim-time
        // boundaries that tile [0, runtime] in order.
        let mut prev_t1 = 0.0;
        let init = spans.iter().find(|s| s.name == "phase.init").unwrap();
        assert_eq!(init.parent, Some(root.id));
        assert_eq!(init.field_f64("sim_t0"), Some(0.0));
        for ph in std::iter::once(&init).chain(iters.iter()) {
            assert_eq!(ph.parent, Some(root.id));
            let t0 = ph.field_f64("sim_t0").unwrap();
            let t1 = ph.field_f64("sim_t1").unwrap();
            assert!(t0 >= prev_t1 - 1e-9, "phase starts must ascend");
            assert!(t1 >= t0);
            prev_t1 = t1;
        }
        assert!(
            (prev_t1 - res.runtime_s).abs() < 1e-9,
            "last phase must end at the job end"
        );

        // Collective spans nest inside phases and carry payload fields.
        let coll = spans.iter().find(|s| s.name == "job.collective").unwrap();
        assert!(coll.field_f64("bytes").unwrap() > 0.0);
        assert!(spans.iter().any(|s| coll.parent == Some(s.id) && s.name.starts_with("phase.")));
        assert_eq!(
            report.counters["job.ops.collective"] as usize,
            plan.collective_count()
        );
    }

    #[test]
    fn phase_energy_attribution_sums_to_job_energy() {
        let plan = si_plan(64, 1);
        let session = vpp_substrate::trace::session(1 << 16);
        let res = execute(&plan, &quick_spec(1), &NetworkModel::perlmutter());
        let report = session.finish();
        let spans = report.spans();
        let phases: Vec<_> = spans
            .iter()
            .filter(|s| s.name.starts_with("phase."))
            .collect();
        assert!(!phases.is_empty());
        for ph in &phases {
            assert!(
                ph.field_f64("energy_j").unwrap() > 0.0,
                "{} must attribute energy",
                ph.name
            );
        }
        // Every op belongs to exactly one phase and the final-barrier pad
        // is folded into the last phase, so the attribution partitions
        // the job's total energy.
        let phase_e: f64 = phases.iter().map(|s| s.field_f64("energy_j").unwrap()).sum();
        let total = res.energy_j();
        assert!(
            (phase_e - total).abs() < 1e-6 * total,
            "phase sum {phase_e} vs job total {total}"
        );
    }

    #[test]
    fn phase_slowdown_stretches_only_the_target_phase() {
        let plan = si_plan(64, 1);
        let net = NetworkModel::perlmutter();
        let run_traced = |spec: &JobSpec| {
            let session = vpp_substrate::trace::session(1 << 16);
            let res = execute(&plan, spec, &net);
            (res, session.finish().aggregate())
        };
        let (base, base_agg) = run_traced(&quick_spec(1));
        let mut spec = quick_spec(1);
        spec.phase_slowdown = Some((PhaseKind::ScfIter, 1.5));
        let (slow, slow_agg) = run_traced(&spec);
        let (again, _) = run_traced(&spec);
        assert_eq!(slow.runtime_s, again.runtime_s, "injection must be seeded");
        assert!(slow.runtime_s > base.runtime_s);

        let sim = |agg: &vpp_substrate::trace::TraceAggregate, name: &str| {
            agg.span(name).unwrap().sim_s
        };
        assert_eq!(
            sim(&base_agg, "phase.init"),
            sim(&slow_agg, "phase.init"),
            "untargeted phase must be untouched"
        );
        let ratio = sim(&slow_agg, "phase.scf_iter") / sim(&base_agg, "phase.scf_iter");
        assert!(
            (1.2..=1.5 + 1e-9).contains(&ratio),
            "compute ops stretch 1.5x, collectives don't: ratio {ratio}"
        );
    }

    #[test]
    fn collective_slowdown_stretches_only_communication() {
        let plan = si_plan(64, 2);
        let net = NetworkModel::perlmutter();
        let run_traced = |spec: &JobSpec| {
            let session = vpp_substrate::trace::session(1 << 16);
            let res = execute(&plan, spec, &net);
            (res, session.finish().aggregate())
        };
        let (base, base_agg) = run_traced(&quick_spec(2));
        let mut spec = quick_spec(2);
        spec.collective_slowdown = Some(1.5);
        let (slow, slow_agg) = run_traced(&spec);
        assert!(slow.runtime_s > base.runtime_s);

        let sim = |agg: &vpp_substrate::trace::TraceAggregate, name: &str| {
            agg.span(name).unwrap().sim_s
        };
        let base_comm = sim(&base_agg, "job.collective");
        assert!(base_comm > 0.0, "collectives must carry a sim window");
        let ratio = sim(&slow_agg, "job.collective") / base_comm;
        assert!(
            (ratio - 1.5).abs() < 1e-9,
            "network time scales exactly by the factor: ratio {ratio}"
        );
        // The compute-side perturbation leaves communication untouched —
        // the two fault classes move disjoint trace rows.
        let mut compute = quick_spec(2);
        compute.phase_slowdown = Some((PhaseKind::ScfIter, 1.5));
        let (_, compute_agg) = run_traced(&compute);
        let drift = (sim(&compute_agg, "job.collective") - base_comm).abs();
        assert!(
            drift < 1e-9,
            "compute slowdown must not move job.collective sim_s (drift {drift})"
        );
    }

    #[test]
    #[should_panic(expected = "collective slowdown factor must be positive")]
    fn collective_slowdown_factor_is_validated() {
        let plan = si_plan(64, 1);
        let mut spec = quick_spec(1);
        spec.collective_slowdown = Some(f64::NAN);
        let _ = execute(&plan, &spec, &NetworkModel::perlmutter());
    }

    #[test]
    #[should_panic(expected = "phase slowdown factor must be positive")]
    fn phase_slowdown_factor_is_validated() {
        let plan = si_plan(64, 1);
        let mut spec = quick_spec(1);
        spec.phase_slowdown = Some((PhaseKind::ScfIter, 0.0));
        let _ = execute(&plan, &spec, &NetworkModel::perlmutter());
    }

    #[test]
    fn power_histogram_matches_trace_derived_high_power_residency() {
        // The live `power_watts` histogram (µs-weighted per segment) must
        // reproduce the high-power-mode residency computed from the full
        // power traces within 2% — the paper's headline quantity, read
        // from a single `/metrics` scrape instead of a trace download.
        let plan = si_plan(256, 1);
        let session = vpp_substrate::trace::session(1 << 16);
        let res = execute(&plan, &quick_spec(1), &NetworkModel::perlmutter());
        let report = session.finish();
        let hist = report
            .histograms
            .get("power_watts")
            .expect("executor records the power_watts histogram");
        let thr = vpp_substrate::trace::HIGH_POWER_THRESHOLD_W;
        let live = hist.fraction_above(thr);
        let (mut above, mut total) = (0.0, 0.0);
        for c in &res.node_traces {
            for g in &c.gpus {
                for s in g.segments() {
                    total += s.duration();
                    if s.watts > thr {
                        above += s.duration();
                    }
                }
            }
        }
        let truth = above / total;
        assert!(
            (0.05..0.95).contains(&truth),
            "workload should be bimodal, residency {truth}"
        );
        assert!(
            (live - truth).abs() <= 0.02,
            "histogram residency {live} vs trace-derived {truth}"
        );
    }

    #[test]
    fn phase_histogram_matches_phase_span_count() {
        let plan = si_plan(64, 1);
        let session = vpp_substrate::trace::session(1 << 16);
        let _ = execute(&plan, &quick_spec(1), &NetworkModel::perlmutter());
        let report = session.finish();
        let hist = report
            .histograms
            .get("phase_sim_seconds")
            .expect("executor records per-phase sim durations");
        let phases = report
            .spans()
            .iter()
            .filter(|s| s.name.starts_with("phase."))
            .count() as u64;
        assert_eq!(hist.count(), phases, "one observation per closed phase");
        assert!(hist.sum() > 0.0);
    }

    #[test]
    fn mean_node_power_is_reasonable() {
        let plan = si_plan(256, 1);
        let res = execute(&plan, &quick_spec(1), &NetworkModel::perlmutter());
        let p = res.mean_node_power_w();
        assert!((500.0..2350.0).contains(&p), "mean node power = {p}");
    }
}
