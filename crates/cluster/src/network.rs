//! NCCL collective time model over NVLink (intra-node) and HPE Slingshot
//! (inter-node).
//!
//! Ring algorithms: an all-reduce moves `2·(n-1)/n` of the payload through
//! the slowest link and pays a latency term per ring step. Within one node
//! the four A100s talk over NVLink3; across nodes the bottleneck is the
//! Cassini NIC.

use vpp_dft::CollectiveKind;

/// Link parameters of the modelled fabric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    /// Effective NVLink bandwidth per GPU pair, bytes/s.
    pub nvlink_bw: f64,
    /// Effective Slingshot bandwidth per NIC, bytes/s.
    pub slingshot_bw: f64,
    /// Per-step latency within a node, seconds.
    pub latency_intra_s: f64,
    /// Per-step latency across nodes, seconds.
    pub latency_inter_s: f64,
}

impl NetworkModel {
    /// Perlmutter-like parameters: NVLink3 ~250 GB/s effective, one
    /// Slingshot "Cassini" NIC per GPU at ~22 GB/s effective.
    #[must_use]
    pub fn perlmutter() -> Self {
        Self {
            nvlink_bw: 250.0e9,
            slingshot_bw: 22.0e9,
            latency_intra_s: 8.0e-6,
            latency_inter_s: 25.0e-6,
        }
    }

    /// Wall time of one collective with `bytes` payload per rank on a job
    /// spanning `nodes × gpus_per_node` ranks.
    ///
    /// # Panics
    /// If the job has no ranks or `bytes` is negative.
    #[must_use]
    pub fn collective_time(
        &self,
        kind: CollectiveKind,
        bytes: f64,
        nodes: usize,
        gpus_per_node: usize,
    ) -> f64 {
        assert!(nodes > 0 && gpus_per_node > 0, "empty job");
        assert!(bytes >= 0.0 && bytes.is_finite(), "bad payload {bytes}");
        let n = (nodes * gpus_per_node) as f64;
        if n <= 1.0 {
            return 0.0;
        }
        let (bw, lat) = if nodes == 1 {
            (self.nvlink_bw, self.latency_intra_s)
        } else {
            (self.slingshot_bw, self.latency_inter_s)
        };
        let steps = n.log2().ceil().max(1.0);
        match kind {
            CollectiveKind::AllReduce => 2.0 * (n - 1.0) / n * bytes / bw + 2.0 * steps * lat,
            CollectiveKind::Broadcast => bytes / bw + steps * lat,
            CollectiveKind::AllToAll => (n - 1.0) / n * bytes * 2.0 / bw + n * lat,
        }
    }
}

impl Default for NetworkModel {
    fn default() -> Self {
        Self::perlmutter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpp_dft::CollectiveKind::*;

    #[test]
    fn single_rank_is_free() {
        let net = NetworkModel::perlmutter();
        // A 1-GPU job has nobody to talk to.
        assert_eq!(net.collective_time(AllReduce, 1e9, 1, 1), 0.0);
    }

    #[test]
    fn intra_node_is_faster_than_inter_node() {
        let net = NetworkModel::perlmutter();
        let intra = net.collective_time(AllReduce, 1e8, 1, 4);
        let inter = net.collective_time(AllReduce, 1e8, 4, 4);
        assert!(inter > 3.0 * intra, "intra {intra}, inter {inter}");
    }

    #[test]
    fn allreduce_grows_with_bytes() {
        let net = NetworkModel::perlmutter();
        let small = net.collective_time(AllReduce, 1e6, 2, 4);
        let large = net.collective_time(AllReduce, 1e8, 2, 4);
        assert!(large > 10.0 * small);
    }

    #[test]
    fn latency_floor_for_tiny_payloads() {
        let net = NetworkModel::perlmutter();
        let t = net.collective_time(AllReduce, 8.0, 8, 4);
        assert!(t >= 2.0 * 5.0 * net.latency_inter_s, "t = {t}");
    }

    #[test]
    fn latency_grows_with_scale() {
        let net = NetworkModel::perlmutter();
        let t2 = net.collective_time(AllReduce, 8.0, 2, 4);
        let t32 = net.collective_time(AllReduce, 8.0, 32, 4);
        assert!(t32 > t2);
    }

    #[test]
    fn broadcast_cheaper_than_allreduce() {
        let net = NetworkModel::perlmutter();
        let ar = net.collective_time(AllReduce, 1e8, 4, 4);
        let bc = net.collective_time(Broadcast, 1e8, 4, 4);
        assert!(bc < ar);
    }

    #[test]
    #[should_panic(expected = "bad payload")]
    fn negative_bytes_panics() {
        let _ = NetworkModel::perlmutter().collective_time(AllReduce, -1.0, 2, 4);
    }
}
