//! Fig. 1: per-node power of a 4-node Si256_hse job whose script runs
//! DGEMM, STREAM, and an idle phase before VASP.
//!
//! The paper's point: individual nodes show consistent power offsets across
//! *identical* phases (manufacturing variability), so the same nodes that
//! run DGEMM hotter also run VASP hotter.

use crate::benchmarks::si256_hse;
use crate::experiments::{f, render_table};
use crate::protocol::{plan_for, StudyContext};
use vpp_cluster::{execute, JobSpec};
use vpp_node::prologue::full_prologue;
use vpp_node::NodeInstance;
use vpp_sim::Rng;

/// Phase powers of one node in the job.
#[derive(Debug, Clone, PartialEq)]
pub struct NodePhases {
    pub node: usize,
    pub idle_w: f64,
    pub dgemm_w: f64,
    pub stream_w: f64,
    pub vasp_mode_w: f64,
}

/// The figure's data: one row per node.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig01 {
    pub rows: Vec<NodePhases>,
    /// Largest spread (max − min) over nodes of any single phase, watts.
    pub max_phase_spread_w: f64,
}

/// Fleet seed used for the figure (fixed so node offsets are stable).
const FLEET_SEED: u64 = 0xF16_0001;

/// Run the 4-node prologue + VASP job and extract per-node phase powers.
#[must_use]
pub fn run(ctx: &StudyContext) -> Fig01 {
    let bench = si256_hse();
    let nodes = 4;
    let plan = plan_for(&bench, nodes, ctx);
    let spec = JobSpec {
        nodes,
        gpu_power_cap_w: None,
        seed: FLEET_SEED,
        start_s: 110.0, // after the prologue
        init_host_s: 6.0,
        straggler: None,
        os_jitter: 0.0,
        phase_slowdown: None,
        collective_slowdown: None,
    };
    let result = execute(&plan, &spec, &ctx.network);

    // Reconstruct the same physical nodes the executor drew and replay the
    // screening prologue on each.
    let fleet = Rng::new(FLEET_SEED);
    let mut rows = Vec::with_capacity(nodes);
    for i in 0..nodes {
        let inst = NodeInstance::sample(&mut fleet.fork(i as u64));
        let pro = full_prologue(&inst, 0.0, 60.0, 30.0, 20.0);
        let vasp_series = ctx.sampler.sample(&result.node_traces[i].node);
        let vasp_mode = vpp_stats::high_power_mode(vasp_series.values()).x;
        rows.push(NodePhases {
            node: i,
            idle_w: pro.node.mean_power(90.0, 110.0),
            dgemm_w: pro.node.mean_power(0.0, 60.0),
            stream_w: pro.node.mean_power(60.0, 90.0),
            vasp_mode_w: vasp_mode,
        });
    }

    let spread = |get: fn(&NodePhases) -> f64| {
        let vals: Vec<f64> = rows.iter().map(get).collect();
        vals.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            - vals.iter().copied().fold(f64::INFINITY, f64::min)
    };
    let max_phase_spread_w = [
        spread(|r| r.idle_w),
        spread(|r| r.dgemm_w),
        spread(|r| r.stream_w),
        spread(|r| r.vasp_mode_w),
    ]
    .into_iter()
    .fold(0.0, f64::max);

    Fig01 {
        rows,
        max_phase_spread_w,
    }
}

impl std::fmt::Display for Fig01 {
    fn fmt(&self, fmt: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let header = vec![
            "node".to_string(),
            "idle W".to_string(),
            "dgemm W".to_string(),
            "stream W".to_string(),
            "vasp mode W".to_string(),
        ];
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.node.to_string(),
                    f(r.idle_w, 0),
                    f(r.dgemm_w, 0),
                    f(r.stream_w, 0),
                    f(r.vasp_mode_w, 0),
                ]
            })
            .collect();
        writeln!(
            fmt,
            "{}",
            render_table(
                "Fig. 1 — per-node power across job phases (4-node Si256_hse)",
                &header,
                &rows
            )
        )?;
        writeln!(
            fmt,
            "max per-phase spread across nodes: {:.0} W",
            self.max_phase_spread_w
        )
    }
}


impl Fig01 {
    /// Machine-readable export.
    #[must_use]
    pub fn csv(&self) -> String {
        let mut out = String::from("node,idle_w,dgemm_w,stream_w,vasp_mode_w\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{},{:.1},{:.1},{:.1},{:.1}\n",
                r.node, r.idle_w, r.dgemm_w, r.stream_w, r.vasp_mode_w
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_nodes_with_visible_but_bounded_variation() {
        let ctx = StudyContext::quick();
        let fig = run(&ctx);
        assert_eq!(fig.rows.len(), 4);
        for r in &fig.rows {
            assert!(r.dgemm_w > r.stream_w, "node {}: dgemm ≤ stream", r.node);
            assert!(r.stream_w > r.idle_w, "node {}: stream ≤ idle", r.node);
            assert!((400.0..520.0).contains(&r.idle_w), "idle {}", r.idle_w);
            assert!(r.vasp_mode_w > 1500.0, "vasp mode {}", r.vasp_mode_w);
        }
        assert!(
            fig.max_phase_spread_w > 5.0,
            "nodes should differ visibly: {}",
            fig.max_phase_spread_w
        );
        assert!(fig.max_phase_spread_w < 120.0, "spread too wide");
    }

    #[test]
    fn hot_nodes_stay_hot_across_phases() {
        // The paper's observation: the same node offsets appear in DGEMM
        // and idle. Check rank correlation between idle and dgemm orders.
        let ctx = StudyContext::quick();
        let fig = run(&ctx);
        let mut by_idle: Vec<usize> = (0..4).collect();
        by_idle.sort_by(|&a, &b| fig.rows[a].idle_w.total_cmp(&fig.rows[b].idle_w));
        let mut by_dgemm: Vec<usize> = (0..4).collect();
        by_dgemm.sort_by(|&a, &b| fig.rows[a].dgemm_w.total_cmp(&fig.rows[b].dgemm_w));
        // At least the hottest idle node should be in the top-2 of dgemm.
        let hottest_idle = by_idle[3];
        assert!(
            by_dgemm[2] == hottest_idle || by_dgemm[3] == hottest_idle,
            "idle order {by_idle:?} vs dgemm order {by_dgemm:?}"
        );
    }
}
