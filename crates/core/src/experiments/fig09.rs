//! Fig. 9: power distributions (violins) of the seven methods applied to
//! Si128 and Si256 supercells on one node.
//!
//! The paper's finding: the higher-order methods (HSE, ACFDT/RPA) run over
//! 600 W per node hotter than the basic DFT schemes, and every method runs
//! hotter on the larger supercell.

use crate::experiments::{f, render_table};
use crate::protocol::StudyContext;
use vpp_cluster::{execute, JobSpec};
use vpp_dft::{build_plan, Method, ParallelLayout, Supercell, SystemParams};
use vpp_stats::{high_power_mode, ViolinStats};
use vpp_telemetry::Sampler;

/// One violin: a method applied to one supercell size.
#[derive(Debug, Clone)]
pub struct MethodRow {
    pub method: &'static str,
    pub atoms: usize,
    pub higher_order: bool,
    pub high_mode_w: f64,
    pub violin: ViolinStats,
}

/// The figure's data.
#[derive(Debug, Clone)]
pub struct Fig09 {
    pub rows: Vec<MethodRow>,
}

/// The two supercell sizes compared.
pub const SIZES: [usize; 2] = [128, 256];

/// Run all methods on both sizes.
#[must_use]
pub fn run(ctx: &StudyContext) -> Fig09 {
    let sampler = Sampler::ideal(0.5);
    let mut rows = Vec::new();
    for &atoms in &SIZES {
        for method in Method::all() {
            let cell = Supercell::silicon(atoms);
            let p = SystemParams::derive(&cell, &method.deck());
            let plan = build_plan(&p, &ParallelLayout::nodes(1), &ctx.cost);
            let spec = JobSpec {
                nodes: 1,
                gpu_power_cap_w: None,
                seed: 0xF16_0009 + atoms as u64,
                start_s: 0.0,
                init_host_s: 2.0,
                straggler: None,
                os_jitter: 0.0,
                phase_slowdown: None,
                collective_slowdown: None,
            };
            let res = execute(&plan, &spec, &ctx.network);
            let series = sampler.sample(&res.node_traces[0].node);
            rows.push(MethodRow {
                method: method.label(),
                atoms,
                higher_order: method.is_higher_order(),
                high_mode_w: high_power_mode(series.values()).x,
                violin: ViolinStats::from_samples(series.values(), 128),
            });
        }
    }
    Fig09 { rows }
}

impl Fig09 {
    /// Mean high-power-mode gap between higher-order and DFT methods, watts.
    #[must_use]
    pub fn higher_order_gap_w(&self) -> f64 {
        let mean = |pred: &dyn Fn(&MethodRow) -> bool| {
            let vals: Vec<f64> = self
                .rows
                .iter()
                .filter(|r| pred(r))
                .map(|r| r.high_mode_w)
                .collect();
            vals.iter().sum::<f64>() / vals.len().max(1) as f64
        };
        mean(&|r| r.higher_order) - mean(&|r| !r.higher_order)
    }
}

impl std::fmt::Display for Fig09 {
    fn fmt(&self, fmt: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let header = vec![
            "method".to_string(),
            "atoms".to_string(),
            "q1 W".to_string(),
            "median W".to_string(),
            "q3 W".to_string(),
            "high mode W".to_string(),
            "modes".to_string(),
        ];
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.method.to_string(),
                    r.atoms.to_string(),
                    f(r.violin.q1, 0),
                    f(r.violin.median, 0),
                    f(r.violin.q3, 0),
                    f(r.high_mode_w, 0),
                    r.violin.outline_mode_count().to_string(),
                ]
            })
            .collect();
        writeln!(
            fmt,
            "{}",
            render_table(
                "Fig. 9 — power distributions per method (Si128 & Si256, 1 node)",
                &header,
                &rows
            )
        )?;
        writeln!(
            fmt,
            "mean higher-order vs DFT high-power-mode gap: {:.0} W",
            self.higher_order_gap_w()
        )
    }
}


impl Fig09 {
    /// Machine-readable export.
    #[must_use]
    pub fn csv(&self) -> String {
        let mut out = String::from(
            "method,atoms,higher_order,q1_w,median_w,q3_w,high_mode_w,outline_modes\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{:.1},{:.1},{:.1},{:.1},{}\n",
                r.method,
                r.atoms,
                r.higher_order,
                r.violin.q1,
                r.violin.median,
                r.violin.q3,
                r.high_mode_w,
                r.violin.outline_mode_count()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Fig09 {
        run(&StudyContext::quick())
    }

    #[test]
    fn higher_order_methods_run_hundreds_of_watts_hotter() {
        let fig = fig();
        assert_eq!(fig.rows.len(), 14);
        let gap = fig.higher_order_gap_w();
        assert!(gap > 300.0, "paper: >600 W on average; got {gap}");
    }

    #[test]
    fn larger_supercell_is_hotter_for_every_method() {
        let fig = fig();
        for method in vpp_dft::Method::all() {
            let get = |atoms: usize| {
                fig.rows
                    .iter()
                    .find(|r| r.method == method.label() && r.atoms == atoms)
                    .unwrap()
                    .high_mode_w
            };
            assert!(
                get(256) > get(128) - 25.0,
                "{}: Si128 {} W vs Si256 {} W",
                method.label(),
                get(128),
                get(256)
            );
        }
    }
}
