//! Fig. 3: component power timelines for Si256_hse, GaAsBi-64 and
//! Si128_acfdtr on one node, with the node-level distribution statistics
//! the paper prints in each panel's text box.

use crate::benchmarks::{gaasbi64, si128_acfdtr, si256_hse, Benchmark};
use crate::experiments::{f, render_table};
use crate::protocol::{measure, RunConfig, StudyContext};
use vpp_telemetry::TimeSeries;

/// One panel of the figure.
#[derive(Debug, Clone)]
pub struct Panel {
    pub name: String,
    pub runtime_s: f64,
    /// Node stats (the text box): max / median / min / high mode.
    pub max_w: f64,
    pub median_w: f64,
    pub min_w: f64,
    pub high_mode_w: f64,
    /// Mean power share of the four GPUs over the run.
    pub gpu_share: f64,
    /// Mean power share of CPU + DDR.
    pub cpu_mem_share: f64,
    /// Down-sampled node power timeline for plotting (time, watts).
    pub timeline: Vec<(f64, f64)>,
    /// Node power histogram (edges, counts) over the run.
    pub histogram: (Vec<f64>, Vec<usize>),
}

/// The figure's data: three panels.
#[derive(Debug, Clone)]
pub struct Fig03 {
    pub panels: Vec<Panel>,
}

fn timeline_points(series: &TimeSeries, n_points: usize) -> Vec<(f64, f64)> {
    let factor = (series.len() / n_points).max(1);
    let d = series.downsample(factor);
    d.times().iter().copied().zip(d.values().iter().copied()).collect()
}

fn panel(bench: &Benchmark, ctx: &StudyContext) -> Panel {
    let m = measure(bench, &RunConfig::nodes(1), ctx);
    let c = &m.result.node_traces[0];
    // Shares over the steady part of the run (skip init/final barriers).
    let t0 = c.node.start() + 8.0;
    let t1 = c.node.end() - 2.0;
    let node_e = c.node.energy_between(t0, t1).max(f64::MIN_POSITIVE);
    let gpu_e: f64 = c.gpus.iter().map(|g| g.energy_between(t0, t1)).sum();
    let cpu_mem_e = c.cpu.energy_between(t0, t1) + c.mem.energy_between(t0, t1);
    let vals = m.node_series.values();
    let (lo, hi) = (400.0, 2350.0);
    Panel {
        name: m.name.clone(),
        runtime_s: m.runtime_s,
        max_w: m.node_summary.max_w,
        median_w: m.node_summary.median_w,
        min_w: m.node_summary.min_w,
        high_mode_w: m.node_summary.high_mode_w,
        gpu_share: gpu_e / node_e,
        cpu_mem_share: cpu_mem_e / node_e,
        timeline: timeline_points(&m.node_series, 48),
        histogram: vpp_stats::describe::histogram(vals, lo, hi, 30),
    }
}

/// Run the three panels.
#[must_use]
pub fn run(ctx: &StudyContext) -> Fig03 {
    Fig03 {
        panels: vec![
            panel(&si256_hse(), ctx),
            panel(&gaasbi64(), ctx),
            panel(&si128_acfdtr(), ctx),
        ],
    }
}

impl std::fmt::Display for Fig03 {
    fn fmt(&self, fmt: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let header = vec![
            "benchmark".to_string(),
            "runtime s".to_string(),
            "max W".to_string(),
            "median W".to_string(),
            "min W".to_string(),
            "high mode W".to_string(),
            "GPU share".to_string(),
            "CPU+mem share".to_string(),
        ];
        let rows: Vec<Vec<String>> = self
            .panels
            .iter()
            .map(|p| {
                vec![
                    p.name.clone(),
                    f(p.runtime_s, 0),
                    f(p.max_w, 0),
                    f(p.median_w, 0),
                    f(p.min_w, 0),
                    f(p.high_mode_w, 0),
                    format!("{:.0}%", p.gpu_share * 100.0),
                    format!("{:.0}%", p.cpu_mem_share * 100.0),
                ]
            })
            .collect();
        writeln!(
            fmt,
            "{}",
            render_table(
                "Fig. 3 — node power timelines & distributions (1 node)",
                &header,
                &rows
            )
        )?;
        for p in &self.panels {
            let values: Vec<f64> = p.timeline.iter().map(|&(_, w)| w).collect();
            writeln!(fmt, "{} node power (W) over the run:", p.name)?;
            write!(fmt, "{}", crate::plot::timeline_chart(&values, 4, 400.0, 2000.0))?;
        }
        Ok(())
    }
}


impl Fig03 {
    /// Machine-readable export: the per-panel stats plus each panel's
    /// down-sampled node-power timeline.
    #[must_use]
    pub fn csv(&self) -> String {
        let mut out = String::from(
            "benchmark,runtime_s,max_w,median_w,min_w,high_mode_w,gpu_share,cpu_mem_share\n",
        );
        for p in &self.panels {
            out.push_str(&format!(
                "{},{:.1},{:.1},{:.1},{:.1},{:.1},{:.3},{:.3}\n",
                p.name,
                p.runtime_s,
                p.max_w,
                p.median_w,
                p.min_w,
                p.high_mode_w,
                p.gpu_share,
                p.cpu_mem_share
            ));
        }
        out.push_str("\nbenchmark,time_s,node_w\n");
        for p in &self.panels {
            for &(t, w) in &p.timeline {
                out.push_str(&format!("{},{t:.1},{w:.1}\n", p.name));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panels_reproduce_paper_structure() {
        let fig = run(&StudyContext::quick());
        assert_eq!(fig.panels.len(), 3);
        let si256 = &fig.panels[0];
        let gaasbi = &fig.panels[1];
        let si128 = &fig.panels[2];

        // Paper: high power mode per node ranges from 766 to 1814 W; the
        // HSE/RPA panels are hot, GaAsBi-64 is low.
        assert!(si256.high_mode_w > 1600.0, "{}", si256.high_mode_w);
        assert!(gaasbi.high_mode_w < 1000.0, "{}", gaasbi.high_mode_w);
        assert!(si128.high_mode_w > 1500.0, "{}", si128.high_mode_w);

        // Paper: for the hot panels GPUs are >70 % of node power and
        // CPU+memory <10 %... GaAsBi-64 "uses much less power".
        assert!(si256.gpu_share > 0.70, "{}", si256.gpu_share);
        assert!(si256.cpu_mem_share < 0.12, "{}", si256.cpu_mem_share);
        assert!(gaasbi.gpu_share < si256.gpu_share);

        // Si128_acfdtr: substantial variation (CPU-only diag stage).
        assert!(
            si128.max_w - si128.min_w > 700.0,
            "spread {}",
            si128.max_w - si128.min_w
        );
    }

    #[test]
    fn histograms_cover_all_samples() {
        let fig = run(&StudyContext::quick());
        for p in &fig.panels {
            let total: usize = p.histogram.1.iter().sum();
            assert!(total > 0, "{} histogram empty", p.name);
        }
    }
}
