//! Fig. 10: efficacy of power capping — the per-GPU high power mode as a
//! fraction of the applied cap, for caps of 400/300/200/100 W.
//!
//! The paper: bars stay at or below 1.0 (the cap regulates successfully)
//! except at the 100 W floor, where a visible regulation error appears.

use crate::benchmarks::suite;
use crate::experiments::capping::{measure_caps, BenchCaps, CAPS};
use crate::experiments::{f, render_table};
use crate::protocol::StudyContext;

/// The figure's data.
#[derive(Debug, Clone)]
pub struct Fig10 {
    /// `(benchmark, nodes, fraction per cap aligned with CAPS)`.
    pub series: Vec<(String, usize, Vec<f64>)>,
}

/// Run the cap sweep over the full suite.
#[must_use]
pub fn run(ctx: &StudyContext) -> Fig10 {
    from_caps(&measure_caps(&suite(), ctx))
}

/// Compute from pre-measured cap data (shared with Fig. 12).
#[must_use]
pub fn from_caps(data: &[BenchCaps]) -> Fig10 {
    Fig10 {
        series: data
            .iter()
            .map(|b| {
                (
                    b.name.clone(),
                    b.nodes,
                    b.mode_cap_fractions().into_iter().map(|(_, x)| x).collect(),
                )
            })
            .collect(),
    }
}

impl std::fmt::Display for Fig10 {
    fn fmt(&self, fmt: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut header = vec!["benchmark (nodes)".to_string()];
        header.extend(CAPS.iter().map(|c| format!("{c:.0} W cap")));
        let rows: Vec<Vec<String>> = self
            .series
            .iter()
            .map(|(name, nodes, fracs)| {
                let mut row = vec![format!("{name} ({nodes})")];
                row.extend(fracs.iter().map(|x| f(*x, 2)));
                row
            })
            .collect();
        writeln!(
            fmt,
            "{}",
            render_table(
                "Fig. 10 — GPU high power mode as a fraction of the applied cap",
                &header,
                &rows
            )
        )?;
        writeln!(fmt, "(1.00 = exactly at the cap; >1 = regulation error)")
    }
}


impl Fig10 {
    /// Machine-readable export.
    #[must_use]
    pub fn csv(&self) -> String {
        let mut out = String::from("benchmark,nodes,cap_w,mode_over_cap\n");
        for (name, nodes, fracs) in &self.series {
            for (cap, frac) in CAPS.iter().zip(fracs) {
                out.push_str(&format!("{name},{nodes},{cap:.0},{frac:.3}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;
    use crate::experiments::capping::measure_caps;

    #[test]
    fn caps_regulate_except_at_the_floor() {
        let ctx = StudyContext::quick();
        let data = measure_caps(&[benchmarks::si256_hse()], &ctx);
        let fig = from_caps(&data);
        let fracs = &fig.series[0].2;
        // 400/300/200 W: within the cap.
        for (cap, frac) in CAPS.iter().zip(fracs) {
            if *cap >= 200.0 {
                assert!(*frac <= 1.005, "cap {cap}: fraction {frac}");
            }
        }
        // 100 W: visible error above the line for the hungriest workload.
        let floor_frac = fracs[3];
        assert!(
            floor_frac > 1.0,
            "paper: error at the 100 W floor; got {floor_frac}"
        );
        assert!(floor_frac < 1.3, "but bounded: {floor_frac}");
    }

    #[test]
    fn light_workloads_sit_far_below_shallow_caps() {
        let ctx = StudyContext::quick();
        let data = measure_caps(&[benchmarks::gaasbi64()], &ctx);
        let fig = from_caps(&data);
        let fracs = &fig.series[0].2;
        // At the default 400 W cap GaAsBi-64 uses a small fraction.
        assert!(fracs[0] < 0.55, "{fracs:?}");
    }
}
