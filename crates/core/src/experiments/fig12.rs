//! Fig. 12: performance under GPU power caps, normalised to the default
//! 400 W limit, for all seven benchmarks.
//!
//! The paper's headline result: 300 W is free; at 200 W (50 % TDP) the two
//! most power-hungry benchmarks lose ≈9 % and the rest less; at 100 W the
//! hungry ones lose >60 % while GaAsBi-64 and PdO2 stay within 5 %.

use crate::benchmarks::suite;
use crate::experiments::capping::{measure_caps, BenchCaps, CAPS};
use crate::experiments::{f, render_table};
use crate::protocol::StudyContext;

/// The figure's data.
#[derive(Debug, Clone)]
pub struct Fig12 {
    /// `(benchmark, nodes, normalised perf per cap aligned with CAPS)`.
    pub series: Vec<(String, usize, Vec<f64>)>,
}

/// Run the cap sweep over the full suite.
#[must_use]
pub fn run(ctx: &StudyContext) -> Fig12 {
    from_caps(&measure_caps(&suite(), ctx))
}

/// Compute from pre-measured cap data (shared with Fig. 10).
#[must_use]
pub fn from_caps(data: &[BenchCaps]) -> Fig12 {
    Fig12 {
        series: data
            .iter()
            .map(|b| {
                (
                    b.name.clone(),
                    b.nodes,
                    b.normalised_perf().into_iter().map(|(_, x)| x).collect(),
                )
            })
            .collect(),
    }
}

impl Fig12 {
    /// Normalised perf of one benchmark at one cap.
    #[must_use]
    pub fn perf(&self, name: &str, cap_w: f64) -> Option<f64> {
        let idx = CAPS.iter().position(|&c| c == cap_w)?;
        self.series
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, _, p)| p[idx])
    }
}

impl std::fmt::Display for Fig12 {
    fn fmt(&self, fmt: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut header = vec!["benchmark (nodes)".to_string()];
        header.extend(CAPS.iter().map(|c| format!("{c:.0} W")));
        let rows: Vec<Vec<String>> = self
            .series
            .iter()
            .map(|(name, nodes, perf)| {
                let mut row = vec![format!("{name} ({nodes})")];
                row.extend(perf.iter().map(|x| f(*x, 2)));
                row
            })
            .collect();
        write!(
            fmt,
            "{}",
            render_table(
                "Fig. 12 — normalised performance vs GPU power cap",
                &header,
                &rows
            )
        )
    }
}


impl Fig12 {
    /// Machine-readable export.
    #[must_use]
    pub fn csv(&self) -> String {
        let mut out = String::from("benchmark,nodes,cap_w,normalised_perf\n");
        for (name, nodes, perf) in &self.series {
            for (cap, p) in CAPS.iter().zip(perf) {
                out.push_str(&format!("{name},{nodes},{cap:.0},{p:.3}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;
    use crate::experiments::capping::measure_caps;

    #[test]
    fn hungry_benchmark_has_the_paper_knee() {
        let ctx = StudyContext::quick();
        let data = measure_caps(&[benchmarks::si256_hse()], &ctx);
        let fig = from_caps(&data);
        let p300 = fig.perf("Si256_hse", 300.0).unwrap();
        let p200 = fig.perf("Si256_hse", 200.0).unwrap();
        let p100 = fig.perf("Si256_hse", 100.0).unwrap();
        assert!(p300 > 0.95, "300 W should be ~free: {p300}");
        assert!((0.82..0.97).contains(&p200), "200 W ≈ 9% loss: {p200}");
        assert!(p100 < 0.55, "100 W is drastic: {p100}");
    }

    #[test]
    fn light_benchmark_tolerates_the_floor() {
        let ctx = StudyContext::quick();
        let data = measure_caps(&[benchmarks::gaasbi64()], &ctx);
        let fig = from_caps(&data);
        let p100 = fig.perf("GaAsBi-64", 100.0).unwrap();
        assert!(
            p100 > 0.90,
            "paper: GaAsBi-64 loses <5% even at 100 W: {p100}"
        );
    }
}
