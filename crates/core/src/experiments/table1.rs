//! Table I: the seven benchmarks and their computational specifics.

use crate::benchmarks::{suite, Benchmark};
use crate::experiments::render_table;
use vpp_dft::{Algo, Xc};

/// One rendered Table I column (the paper lays benchmarks out as columns;
/// we render them as rows).
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    pub name: String,
    pub electrons: u32,
    pub ions: usize,
    pub functional: String,
    pub algo: String,
    pub nelm: usize,
    pub nbands: usize,
    pub nbandsexact: Option<usize>,
    pub fft_grid: [usize; 3],
    pub nplwv: usize,
    pub kpoints: [usize; 3],
    pub kpar: usize,
}

/// The rendered table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1 {
    pub rows: Vec<Table1Row>,
}

fn functional_label(xc: Xc) -> &'static str {
    match xc {
        Xc::Lda => "DFT (LDA)",
        Xc::Gga => "DFT (GGA)",
        Xc::Hse => "HSE",
        Xc::VdwDf => "VDW",
        Xc::Rpa => "ACFDT/RPA",
    }
}

fn algo_label(algo: Algo) -> &'static str {
    match algo {
        Algo::Normal => "BD (Normal)",
        Algo::Fast => "BD+RMM (Fast)",
        Algo::VeryFast => "RMM (VeryFast)",
        Algo::Damped => "CG (Damped)",
        Algo::All => "CG (All)",
    }
}

fn row(b: &Benchmark) -> Table1Row {
    let p = b.params();
    Table1Row {
        name: b.name().to_string(),
        electrons: p.nelect,
        ions: p.n_ions,
        functional: functional_label(p.xc).to_string(),
        algo: algo_label(p.algo).to_string(),
        nelm: p.nelm,
        nbands: p.nbands,
        nbandsexact: p.nbandsexact,
        fft_grid: p.fft_grid,
        nplwv: p.nplwv,
        kpoints: b.deck.kpoints,
        kpar: p.kpar,
    }
}

/// Regenerate Table I from the benchmark definitions.
#[must_use]
pub fn run() -> Table1 {
    Table1 {
        rows: suite().iter().map(row).collect(),
    }
}

impl std::fmt::Display for Table1 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let header = vec![
            "benchmark".to_string(),
            "electrons(ions)".to_string(),
            "functional".to_string(),
            "algo".to_string(),
            "NELM".to_string(),
            "NBANDS".to_string(),
            "NBANDSEXACT".to_string(),
            "FFT grid".to_string(),
            "NPLWV".to_string(),
            "KPOINTS(KPAR)".to_string(),
        ];
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    format!("{} ({})", r.electrons, r.ions),
                    r.functional.clone(),
                    r.algo.clone(),
                    r.nelm.to_string(),
                    r.nbands.to_string(),
                    r.nbandsexact.map_or(String::new(), |n| n.to_string()),
                    format!("{}x{}x{}", r.fft_grid[0], r.fft_grid[1], r.fft_grid[2]),
                    r.nplwv.to_string(),
                    format!(
                        "{} {} {} ({})",
                        r.kpoints[0], r.kpoints[1], r.kpoints[2], r.kpar
                    ),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            render_table("Table I — seven VASP benchmarks", &header, &rows)
        )
    }
}


impl Table1 {
    /// Machine-readable export.
    #[must_use]
    pub fn csv(&self) -> String {
        let mut out = String::from(
            "benchmark,electrons,ions,functional,algo,nelm,nbands,nbandsexact,ngx,ngy,ngz,nplwv,k1,k2,k3,kpar\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                r.name,
                r.electrons,
                r.ions,
                r.functional,
                r.algo,
                r.nelm,
                r.nbands,
                r.nbandsexact.map_or(String::new(), |n| n.to_string()),
                r.fft_grid[0],
                r.fft_grid[1],
                r.fft_grid[2],
                r.nplwv,
                r.kpoints[0],
                r.kpoints[1],
                r.kpoints[2],
                r.kpar
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_seven_rows() {
        assert_eq!(run().rows.len(), 7);
    }

    #[test]
    fn rendering_includes_published_values() {
        let text = run().to_string();
        assert!(text.contains("1020 (255)"));
        assert!(text.contains("3288 (348)"));
        assert!(text.contains("80x120x54"));
        assert!(text.contains("512000"));
        assert!(text.contains("23506"));
        assert!(text.contains("4 4 4 (2)"));
    }

    #[test]
    fn only_si128_has_nbandsexact() {
        let t = run();
        for r in &t.rows {
            if r.name == "Si128_acfdtr" {
                assert_eq!(r.nbandsexact, Some(23_506));
            } else {
                assert_eq!(r.nbandsexact, None, "{}", r.name);
            }
        }
    }
}
