//! Fig. 11: effect of a 200 W GPU cap on the Si128_acfdtr timeline.
//!
//! The paper: the power peaks are cut roughly in half, the troughs are
//! unchanged (capping also *flattens* within-job power variation), and the
//! formerly high-power stretches visibly slow down.

use crate::benchmarks::si128_acfdtr;
use crate::experiments::{f, render_table};
use crate::protocol::{measure, Measured, RunConfig, StudyContext};

/// Summary of one run (uncapped or capped).
#[derive(Debug, Clone)]
pub struct CapRun {
    pub cap_w: Option<f64>,
    pub runtime_s: f64,
    pub node_peak_w: f64,
    pub node_trough_w: f64,
    pub gpu_peak_w: f64,
    /// Node power timeline, down-sampled for plotting.
    pub timeline: Vec<(f64, f64)>,
}

/// The figure's data: both runs.
#[derive(Debug, Clone)]
pub struct Fig11 {
    pub uncapped: CapRun,
    pub capped: CapRun,
}

fn cap_run(m: &Measured) -> CapRun {
    let series = &m.node_series;
    let factor = (series.len() / 60).max(1);
    let d = series.downsample(factor);
    CapRun {
        cap_w: m.cap_w,
        runtime_s: m.runtime_s,
        node_peak_w: m.node_summary.max_w,
        node_trough_w: m.node_summary.min_w,
        gpu_peak_w: m.gpu_summary.max_w,
        timeline: d
            .times()
            .iter()
            .copied()
            .zip(d.values().iter().copied())
            .collect(),
    }
}

/// Run Si128_acfdtr with and without the 200 W cap.
#[must_use]
pub fn run(ctx: &StudyContext) -> Fig11 {
    let bench = si128_acfdtr();
    let base = measure(&bench, &RunConfig::nodes(1), ctx);
    let capped = measure(&bench, &RunConfig::capped(1, 200.0), ctx);
    Fig11 {
        uncapped: cap_run(&base),
        capped: cap_run(&capped),
    }
}

impl Fig11 {
    /// Fraction by which the cap reduced the node power peak.
    #[must_use]
    pub fn peak_reduction(&self) -> f64 {
        1.0 - self.capped.node_peak_w / self.uncapped.node_peak_w
    }

    /// Relative change of the trough (should be ≈0).
    #[must_use]
    pub fn trough_change(&self) -> f64 {
        (self.capped.node_trough_w - self.uncapped.node_trough_w).abs()
            / self.uncapped.node_trough_w
    }
}

impl std::fmt::Display for Fig11 {
    fn fmt(&self, fmt: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let header = vec![
            "run".to_string(),
            "runtime s".to_string(),
            "node peak W".to_string(),
            "node trough W".to_string(),
            "GPU0 peak W".to_string(),
        ];
        let rows = vec![
            vec![
                "default (400 W)".to_string(),
                f(self.uncapped.runtime_s, 0),
                f(self.uncapped.node_peak_w, 0),
                f(self.uncapped.node_trough_w, 0),
                f(self.uncapped.gpu_peak_w, 0),
            ],
            vec![
                "capped (200 W)".to_string(),
                f(self.capped.runtime_s, 0),
                f(self.capped.node_peak_w, 0),
                f(self.capped.node_trough_w, 0),
                f(self.capped.gpu_peak_w, 0),
            ],
        ];
        writeln!(
            fmt,
            "{}",
            render_table(
                "Fig. 11 — Si128_acfdtr with and without a 200 W GPU cap (1 node)",
                &header,
                &rows
            )
        )?;
        writeln!(
            fmt,
            "peak reduced by {:.0}%, trough changed by {:.1}%, runtime stretched {:.1}x",
            self.peak_reduction() * 100.0,
            self.trough_change() * 100.0,
            self.capped.runtime_s / self.uncapped.runtime_s
        )?;
        for (tag, run) in [("default", &self.uncapped), ("200 W cap", &self.capped)] {
            let values: Vec<f64> = run.timeline.iter().map(|&(_, w)| w).collect();
            writeln!(fmt, "{tag} node power (W):")?;
            write!(fmt, "{}", crate::plot::timeline_chart(&values, 4, 400.0, 2000.0))?;
        }
        Ok(())
    }
}


impl Fig11 {
    /// Machine-readable export: both timelines.
    #[must_use]
    pub fn csv(&self) -> String {
        let mut out = String::from("run,time_s,node_w\n");
        for (tag, run) in [("default", &self.uncapped), ("capped_200w", &self.capped)] {
            for &(t, w) in &run.timeline {
                out.push_str(&format!("{tag},{t:.1},{w:.1}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cap_halves_peaks_leaves_troughs_slows_run() {
        let fig = run(&StudyContext::quick());
        // Paper: "the peak power is reduced by about 50%".
        assert!(
            (0.30..0.60).contains(&fig.peak_reduction()),
            "peak reduction {}",
            fig.peak_reduction()
        );
        // "...while the troughs remain unchanged".
        assert!(fig.trough_change() < 0.08, "trough moved {}", fig.trough_change());
        // "...the execution ... is now visibly slowed down".
        assert!(
            fig.capped.runtime_s > fig.uncapped.runtime_s * 1.04,
            "{} vs {}",
            fig.capped.runtime_s,
            fig.uncapped.runtime_s
        );
        // GPU peak respects the cap.
        assert!(fig.capped.gpu_peak_w <= 205.0);
    }
}
