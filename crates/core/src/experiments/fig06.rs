//! Fig. 6: power vs system size — silicon supercells from 16 to 4096 atoms
//! under the default DFT iteration scheme, one node.
//!
//! The paper's finding: power rises with size and plateaus once the GPUs
//! approach their TDP, at ≈2048 atoms.

use crate::experiments::{f, render_table};
use crate::protocol::StudyContext;
use vpp_cluster::{execute, JobSpec};
use vpp_dft::{build_plan, Incar, ParallelLayout, Supercell, SystemParams};
use vpp_sim::PowerTrace;
use vpp_stats::{fwhm, high_power_mode};
use vpp_telemetry::Sampler;

/// One supercell size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeRow {
    pub atoms: usize,
    pub nplwv: usize,
    pub nbands: usize,
    pub node_mode_w: f64,
    pub node_fwhm_w: f64,
    pub gpu4_mode_w: f64,
    pub gpu4_fwhm_w: f64,
}

/// The figure's data.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig06 {
    pub rows: Vec<SizeRow>,
}

/// The sweep sizes.
pub const SIZES: [usize; 9] = [16, 32, 64, 128, 256, 512, 1024, 2048, 4096];

/// Run the size sweep.
#[must_use]
pub fn run(ctx: &StudyContext) -> Fig06 {
    // Small cells iterate in fractions of a second; sample at 0.5 s so even
    // they yield enough samples (Fig. 2 shows rates ≤5 s are equivalent for
    // the high power mode).
    let sampler = Sampler::ideal(0.5);
    let rows = SIZES
        .iter()
        .map(|&atoms| {
            let cell = Supercell::silicon(atoms);
            let deck = Incar::default_deck();
            let p = SystemParams::derive(&cell, &deck);
            let plan = build_plan(&p, &ParallelLayout::nodes(1), &ctx.cost);
            let spec = JobSpec {
                nodes: 1,
                gpu_power_cap_w: None,
                seed: 0xF16_0006 + atoms as u64,
                start_s: 0.0,
                init_host_s: 2.0,
                straggler: None,
                os_jitter: 0.0,
                phase_slowdown: None,
                collective_slowdown: None,
            };
            let res = execute(&plan, &spec, &ctx.network);
            let c = &res.node_traces[0];
            let node_series = sampler.sample(&c.node);
            let gpu4 = PowerTrace::sum(&c.gpus.iter().collect::<Vec<_>>());
            let gpu4_series = sampler.sample(&gpu4);
            let node_mode = high_power_mode(node_series.values());
            let gpu4_mode = high_power_mode(gpu4_series.values());
            SizeRow {
                atoms,
                nplwv: p.nplwv,
                nbands: p.nbands,
                node_mode_w: node_mode.x,
                node_fwhm_w: fwhm(node_series.values(), node_mode),
                gpu4_mode_w: gpu4_mode.x,
                gpu4_fwhm_w: fwhm(gpu4_series.values(), gpu4_mode),
            }
        })
        .collect();
    Fig06 { rows }
}

impl Fig06 {
    /// Atom count where 4-GPU power first reaches 90 % of its plateau.
    #[must_use]
    pub fn saturation_atoms(&self) -> usize {
        let plateau = self
            .rows
            .iter()
            .map(|r| r.gpu4_mode_w)
            .fold(f64::NEG_INFINITY, f64::max);
        self.rows
            .iter()
            .find(|r| r.gpu4_mode_w >= 0.9 * plateau)
            .map_or(0, |r| r.atoms)
    }
}

impl std::fmt::Display for Fig06 {
    fn fmt(&self, fmt: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let header = vec![
            "atoms".to_string(),
            "NPLWV".to_string(),
            "NBANDS".to_string(),
            "node mode W".to_string(),
            "±FWHM".to_string(),
            "4-GPU mode W".to_string(),
            "±FWHM".to_string(),
        ];
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.atoms.to_string(),
                    r.nplwv.to_string(),
                    r.nbands.to_string(),
                    f(r.node_mode_w, 0),
                    f(r.node_fwhm_w, 0),
                    f(r.gpu4_mode_w, 0),
                    f(r.gpu4_fwhm_w, 0),
                ]
            })
            .collect();
        writeln!(
            fmt,
            "{}",
            render_table(
                "Fig. 6 — power vs silicon supercell size (DFT default, 1 node)",
                &header,
                &rows
            )
        )?;
        writeln!(
            fmt,
            "GPU saturation (90% of plateau) at {} atoms; node TDP 2350 W, 4-GPU TDP 1600 W",
            self.saturation_atoms()
        )
    }
}


impl Fig06 {
    /// Machine-readable export.
    #[must_use]
    pub fn csv(&self) -> String {
        let mut out = String::from(
            "atoms,nplwv,nbands,node_mode_w,node_fwhm_w,gpu4_mode_w,gpu4_fwhm_w\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{:.1},{:.1},{:.1},{:.1}\n",
                r.atoms, r.nplwv, r.nbands, r.node_mode_w, r.node_fwhm_w, r.gpu4_mode_w,
                r.gpu4_fwhm_w
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep(sizes: &[usize]) -> Vec<SizeRow> {
        // Reduced sweep for test speed.
        let ctx = StudyContext::quick();
        let full = run(&ctx);
        full.rows
            .into_iter()
            .filter(|r| sizes.contains(&r.atoms))
            .collect()
    }

    #[test]
    fn power_rises_with_size_then_plateaus() {
        let rows = sweep(&[64, 256, 1024, 2048, 4096]);
        // Monotone (within a small tolerance) up the sweep.
        for w in rows.windows(2) {
            assert!(
                w[1].gpu4_mode_w >= w[0].gpu4_mode_w - 40.0,
                "{} atoms {} W → {} atoms {} W",
                w[0].atoms,
                w[0].gpu4_mode_w,
                w[1].atoms,
                w[1].gpu4_mode_w
            );
        }
        // Plateau: the last doubling changes little...
        let last = rows[rows.len() - 1].gpu4_mode_w;
        let prev = rows[rows.len() - 2].gpu4_mode_w;
        assert!((last - prev).abs() / last < 0.08, "{prev} → {last}");
        // ...near (but below) the combined GPU TDP.
        assert!(last > 1150.0 && last < 1600.0, "plateau at {last}");
        // And the small end is far below it.
        assert!(rows[0].gpu4_mode_w < 0.55 * last);
    }

    #[test]
    fn both_nplwv_and_nbands_grow_with_size() {
        let rows = sweep(&[64, 512, 4096]);
        for w in rows.windows(2) {
            assert!(w[1].nplwv > w[0].nplwv);
            assert!(w[1].nbands > w[0].nbands);
        }
    }
}
