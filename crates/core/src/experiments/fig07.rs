//! Fig. 7: power/energy vs the internal parameters NPLWV (left panel,
//! swept via ENCUT) and NBANDS (right panel), Si256_hse on one node.
//!
//! The paper's mechanism: plane waves are distributed *within* each GPU →
//! more of them means wider kernels and higher power; bands are processed
//! *sequentially* per GPU → more of them means longer runtime and more
//! energy at unchanged power.

use crate::benchmarks::si256_hse;
use crate::experiments::{f, render_table};
use crate::protocol::{measure, RunConfig, StudyContext};

/// One sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// The swept value (NPLWV or NBANDS).
    pub x: usize,
    pub node_mode_w: f64,
    pub node_mean_w: f64,
    pub runtime_s: f64,
    pub energy_mj: f64,
}

/// The figure's data: both panels.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig07 {
    /// Left panel: varying plane-wave counts (via ENCUT).
    pub nplwv_rows: Vec<SweepRow>,
    /// Right panel: varying band counts.
    pub nbands_rows: Vec<SweepRow>,
}

/// ENCUT values for the NPLWV sweep, eV.
pub const ENCUTS: [f64; 5] = [160.0, 245.0, 340.0, 450.0, 600.0];
/// NBANDS values for the band sweep.
pub const NBANDS: [usize; 5] = [320, 640, 1280, 1920, 2560];

/// Run both sweeps. `nelm_override` shortens runs for tests (None = paper
/// iteration count).
#[must_use]
pub fn run_with_nelm(ctx: &StudyContext, nelm_override: Option<usize>) -> Fig07 {
    let base = si256_hse();

    let sweep = |mutate: &dyn Fn(&mut crate::benchmarks::Benchmark), salt: u64| {
        let mut b = base.clone();
        if let Some(nelm) = nelm_override {
            b.deck.nelm = nelm;
        }
        mutate(&mut b);
        let mut cfg = RunConfig::nodes(1);
        cfg.seed_salt = salt;
        let m = measure(&b, &cfg, ctx);
        SweepRow {
            x: 0,
            node_mode_w: m.node_summary.high_mode_w,
            node_mean_w: m.node_summary.mean_w,
            runtime_s: m.runtime_s,
            energy_mj: m.energy_j / 1e6,
        }
    };

    let nplwv_rows = ENCUTS
        .iter()
        .enumerate()
        .map(|(i, &encut)| {
            let mut row = sweep(
                &|b| b.deck.encut_ev = Some(encut),
                0x0701 + i as u64,
            );
            let mut b = base.clone();
            b.deck.encut_ev = Some(encut);
            row.x = b.params().nplwv;
            row
        })
        .collect();

    let nbands_rows = NBANDS
        .iter()
        .enumerate()
        .map(|(i, &nb)| {
            let mut row = sweep(&|b| b.deck.nbands = Some(nb), 0x0702 + i as u64);
            row.x = nb;
            row
        })
        .collect();

    Fig07 {
        nplwv_rows,
        nbands_rows,
    }
}

/// Run with the paper's NELM.
#[must_use]
pub fn run(ctx: &StudyContext) -> Fig07 {
    run_with_nelm(ctx, None)
}

impl std::fmt::Display for Fig07 {
    fn fmt(&self, fmt: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let header = |x: &str| {
            vec![
                x.to_string(),
                "mode W".to_string(),
                "mean W".to_string(),
                "runtime s".to_string(),
                "energy MJ".to_string(),
            ]
        };
        let render = |rows: &[SweepRow]| -> Vec<Vec<String>> {
            rows.iter()
                .map(|r| {
                    vec![
                        r.x.to_string(),
                        f(r.node_mode_w, 0),
                        f(r.node_mean_w, 0),
                        f(r.runtime_s, 0),
                        f(r.energy_mj, 2),
                    ]
                })
                .collect()
        };
        writeln!(
            fmt,
            "{}",
            render_table(
                "Fig. 7 (left) — power/energy vs NPLWV (Si256_hse, 1 node)",
                &header("NPLWV"),
                &render(&self.nplwv_rows)
            )
        )?;
        write!(
            fmt,
            "{}",
            render_table(
                "Fig. 7 (right) — power/energy vs NBANDS (Si256_hse, 1 node)",
                &header("NBANDS"),
                &render(&self.nbands_rows)
            )
        )
    }
}


impl Fig07 {
    /// Machine-readable export (both panels, tagged by sweep).
    #[must_use]
    pub fn csv(&self) -> String {
        let mut out = String::from("sweep,x,node_mode_w,node_mean_w,runtime_s,energy_mj\n");
        for (tag, rows) in [("nplwv", &self.nplwv_rows), ("nbands", &self.nbands_rows)] {
            for r in rows {
                out.push_str(&format!(
                    "{tag},{},{:.1},{:.1},{:.1},{:.3}\n",
                    r.x, r.node_mode_w, r.node_mean_w, r.runtime_s, r.energy_mj
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Fig07 {
        run_with_nelm(&StudyContext::quick(), Some(6))
    }

    #[test]
    fn power_rises_with_nplwv_but_not_nbands() {
        let fig = fig();
        // Left panel: visibly higher power at the top of the sweep.
        let first = fig.nplwv_rows.first().unwrap();
        let last = fig.nplwv_rows.last().unwrap();
        assert!(last.x > first.x);
        assert!(
            last.node_mode_w > first.node_mode_w + 50.0,
            "{} W → {} W",
            first.node_mode_w,
            last.node_mode_w
        );
        // Right panel: mode stays flat within a small tolerance.
        let modes: Vec<f64> = fig.nbands_rows.iter().map(|r| r.node_mode_w).collect();
        let spread = modes.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            - modes.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(spread < 0.08 * modes[0], "NBANDS mode spread {spread} W");
    }

    #[test]
    fn nbands_scales_runtime_and_energy() {
        let fig = fig();
        let rt: Vec<f64> = fig.nbands_rows.iter().map(|r| r.runtime_s).collect();
        let e: Vec<f64> = fig.nbands_rows.iter().map(|r| r.energy_mj).collect();
        assert!(rt.last().unwrap() > &(rt[0] * 2.0), "{rt:?}");
        assert!(e.last().unwrap() > &(e[0] * 2.0), "{e:?}");
    }
}
