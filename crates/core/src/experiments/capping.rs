//! Shared power-cap sweep used by Figs. 10 and 12.

use crate::benchmarks::Benchmark;
use crate::protocol::{measure, Measured, RunConfig, StudyContext};

/// The cap levels of the study (§V-A), watts.
pub const CAPS: [f64; 4] = [400.0, 300.0, 200.0, 100.0];

/// One benchmark measured under every cap at its study node count.
#[derive(Debug, Clone)]
pub struct BenchCaps {
    pub name: String,
    pub nodes: usize,
    /// `(cap, measurement)`, in [`CAPS`] order (default cap first).
    pub runs: Vec<(f64, Measured)>,
}

impl BenchCaps {
    /// Normalised performance at each cap: `runtime(default)/runtime(cap)`.
    #[must_use]
    pub fn normalised_perf(&self) -> Vec<(f64, f64)> {
        let base = self.runs[0].1.runtime_s;
        self.runs
            .iter()
            .map(|(cap, m)| (*cap, base / m.runtime_s))
            .collect()
    }

    /// GPU high power mode as a fraction of the applied cap (Fig. 10).
    #[must_use]
    pub fn mode_cap_fractions(&self) -> Vec<(f64, f64)> {
        self.runs
            .iter()
            .map(|(cap, m)| (*cap, m.gpu_summary.high_mode_w / cap))
            .collect()
    }
}

/// Measure `benchmarks` under every cap.
#[must_use]
pub fn measure_caps(benchmarks: &[Benchmark], ctx: &StudyContext) -> Vec<BenchCaps> {
    benchmarks
        .iter()
        .map(|b| BenchCaps {
            name: b.name().to_string(),
            nodes: b.cap_study_nodes,
            runs: CAPS
                .iter()
                .map(|&cap| {
                    let mut cfg = RunConfig::capped(b.cap_study_nodes, cap);
                    cfg.seed_salt = 0xCA9 + cap as u64;
                    (cap, measure(b, &cfg, ctx))
                })
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;

    #[test]
    fn caps_sweep_structure() {
        let ctx = StudyContext::quick();
        let data = measure_caps(&[benchmarks::b_hr105_hse()], &ctx);
        assert_eq!(data.len(), 1);
        assert_eq!(data[0].runs.len(), 4);
        let perf = data[0].normalised_perf();
        assert_eq!(perf[0].1, 1.0, "baseline normalises to itself");
        // Performance can only degrade (or stay) as caps deepen.
        for w in perf.windows(2) {
            assert!(w[1].1 <= w[0].1 + 0.02, "{perf:?}");
        }
    }
}
