//! Shared power-cap sweep used by Figs. 10 and 12.

use crate::benchmarks::Benchmark;
use crate::protocol::{measure, Measured, RunConfig, StudyContext};

/// The cap levels of the study (§V-A), watts.
pub const CAPS: [f64; 4] = [400.0, 300.0, 200.0, 100.0];

/// One benchmark measured under every cap at its study node count.
#[derive(Debug, Clone)]
pub struct BenchCaps {
    pub name: String,
    pub nodes: usize,
    /// `(cap, measurement)`, in [`CAPS`] order (default cap first).
    pub runs: Vec<(f64, Measured)>,
}

impl BenchCaps {
    /// Normalised performance at each cap: `runtime(default)/runtime(cap)`.
    #[must_use]
    pub fn normalised_perf(&self) -> Vec<(f64, f64)> {
        let base = self.runs[0].1.runtime_s;
        self.runs
            .iter()
            .map(|(cap, m)| (*cap, base / m.runtime_s))
            .collect()
    }

    /// GPU high power mode as a fraction of the applied cap (Fig. 10).
    #[must_use]
    pub fn mode_cap_fractions(&self) -> Vec<(f64, f64)> {
        self.runs
            .iter()
            .map(|(cap, m)| (*cap, m.gpu_summary.high_mode_w / cap))
            .collect()
    }
}

/// Measure `benchmarks` under every cap.
///
/// Every (benchmark, cap) cell is an independent measurement, so the whole
/// grid fans out on the substrate pool (previously a serial double loop).
#[must_use]
pub fn measure_caps(benchmarks: &[Benchmark], ctx: &StudyContext) -> Vec<BenchCaps> {
    let grid: Vec<(usize, usize)> = (0..benchmarks.len())
        .flat_map(|b| (0..CAPS.len()).map(move |c| (b, c)))
        .collect();
    let mut measured = vpp_substrate::par_map(grid, |(bi, ci)| {
        let b = &benchmarks[bi];
        let cap = CAPS[ci];
        let mut cfg = RunConfig::capped(b.cap_study_nodes, cap);
        cfg.seed_salt = 0xCA9 + cap as u64;
        (bi, ci, measure(b, &cfg, ctx))
    });
    measured.sort_by_key(|&(bi, ci, _)| (bi, ci));
    let mut per_bench: Vec<Vec<(f64, Measured)>> =
        (0..benchmarks.len()).map(|_| Vec::new()).collect();
    for (bi, ci, m) in measured {
        per_bench[bi].push((CAPS[ci], m));
    }
    benchmarks
        .iter()
        .zip(per_bench)
        .map(|(b, runs)| BenchCaps {
            name: b.name().to_string(),
            nodes: b.cap_study_nodes,
            runs,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;

    #[test]
    fn caps_sweep_structure() {
        let ctx = StudyContext::quick();
        let data = measure_caps(&[benchmarks::b_hr105_hse()], &ctx);
        assert_eq!(data.len(), 1);
        assert_eq!(data[0].runs.len(), 4);
        let perf = data[0].normalised_perf();
        assert_eq!(perf[0].1, 1.0, "baseline normalises to itself");
        // Performance can only degrade (or stay) as caps deepen.
        for w in perf.windows(2) {
            assert!(w[1].1 <= w[0].1 + 0.02, "{perf:?}");
        }
    }
}
