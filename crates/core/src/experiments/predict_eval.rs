//! Extension (§VI-C "Next Step — Predicting VASP Power"): fit the
//! input-parameter power predictor on the measured suite and evaluate its
//! accuracy — the workflow a batch system would run to classify queued
//! jobs "without costly computation".

use crate::benchmarks::suite;
use crate::experiments::{f, render_table};
use crate::predict::{JobFeatures, PowerPredictor};
use crate::protocol::{measure, RunConfig, StudyContext};

/// One benchmark's prediction outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictRow {
    pub name: String,
    pub measured_w: f64,
    pub predicted_w: f64,
    /// Signed relative error.
    pub rel_err: f64,
}

/// The experiment's result.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictEval {
    pub rows: Vec<PredictRow>,
    /// RMS error of the fitted model, watts.
    pub rms_w: f64,
    /// Fitted method factors (higher-order, basic DFT).
    pub s_higher: f64,
    pub s_dft: f64,
}

/// Measure the suite at one node, fit the predictor, evaluate in-sample.
#[must_use]
pub fn run(ctx: &StudyContext) -> PredictEval {
    let data: Vec<(String, JobFeatures, f64)> = suite()
        .iter()
        .map(|b| {
            let m = measure(b, &RunConfig::nodes(1), ctx);
            (
                b.name().to_string(),
                JobFeatures::from_params(&b.params(), 1),
                m.node_summary.high_mode_w,
            )
        })
        .collect();

    let mut predictor = PowerPredictor::baseline();
    let fit_data: Vec<(JobFeatures, f64)> =
        data.iter().map(|(_, f, p)| (*f, *p)).collect();
    let rms_w = predictor.fit_method_factors(&fit_data);

    let rows = data
        .into_iter()
        .map(|(name, feats, measured_w)| {
            let predicted_w = predictor.predict_node_w(&feats);
            PredictRow {
                name,
                measured_w,
                predicted_w,
                rel_err: (predicted_w - measured_w) / measured_w,
            }
        })
        .collect();

    PredictEval {
        rows,
        rms_w,
        s_higher: predictor.s_higher,
        s_dft: predictor.s_dft,
    }
}

impl PredictEval {
    /// Largest absolute relative error across the suite.
    #[must_use]
    pub fn worst_rel_err(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| r.rel_err.abs())
            .fold(0.0, f64::max)
    }
}

impl std::fmt::Display for PredictEval {
    fn fmt(&self, fmt: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let header = vec![
            "benchmark".to_string(),
            "measured W".to_string(),
            "predicted W".to_string(),
            "error".to_string(),
        ];
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    f(r.measured_w, 0),
                    f(r.predicted_w, 0),
                    format!("{:+.1}%", r.rel_err * 100.0),
                ]
            })
            .collect();
        writeln!(
            fmt,
            "{}",
            render_table(
                "Extension (§VI-C) — input-parameter power predictor, fitted on the suite",
                &header,
                &rows
            )
        )?;
        writeln!(
            fmt,
            "RMS {:.0} W; fitted method factors: higher-order {:.2}, DFT {:.2}",
            self.rms_w, self.s_higher, self.s_dft
        )
    }
}


impl PredictEval {
    /// Machine-readable export.
    #[must_use]
    pub fn csv(&self) -> String {
        let mut out = String::from("benchmark,measured_w,predicted_w,rel_err\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{},{:.1},{:.1},{:.4}\n",
                r.name, r.measured_w, r.predicted_w, r.rel_err
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictor_fits_the_suite_within_twenty_percent() {
        let eval = run(&StudyContext::quick());
        assert_eq!(eval.rows.len(), 7);
        assert!(
            eval.worst_rel_err() < 0.25,
            "worst error {:.1}%: {:#?}",
            eval.worst_rel_err() * 100.0,
            eval.rows
        );
        assert!(eval.rms_w < 250.0, "rms {}", eval.rms_w);
        // The fitted factors preserve the method ordering.
        assert!(eval.s_higher > eval.s_dft);
    }

    #[test]
    fn predictor_separates_hungry_from_light_workloads() {
        let eval = run(&StudyContext::quick());
        let get = |name: &str| {
            eval.rows
                .iter()
                .find(|r| r.name == name)
                .unwrap()
                .predicted_w
        };
        assert!(get("Si256_hse") > get("GaAsBi-64") + 400.0);
    }
}
