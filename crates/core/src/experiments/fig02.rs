//! Fig. 2: the sampling-rate methodology study.
//!
//! Power is captured at 0.1 s and down-sampled to coarser rates. The paper's
//! findings, which this experiment reproduces: the high power mode is stable
//! at any rate up to 10 s, the FWHM of the high mode widens as the rate
//! coarsens, and the maximum may decrease slightly.

use crate::benchmarks::si256_hse;
use crate::experiments::{f, render_table};
use crate::protocol::{plan_for, StudyContext};
use vpp_cluster::{execute, JobSpec};
use vpp_stats::{fwhm, high_power_mode};
use vpp_telemetry::Sampler;

/// Distribution statistics of the per-GPU power at one sampling rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateRow {
    pub rate_s: f64,
    pub max_w: f64,
    pub median_w: f64,
    pub min_w: f64,
    pub high_mode_w: f64,
    pub fwhm_w: f64,
    pub n_samples: usize,
}

/// The figure's data.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig02 {
    pub rows: Vec<RateRow>,
}

/// The down-sampling factors applied to the 0.1 s capture.
pub const RATES: [f64; 7] = [0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0];

/// Capture Si256_hse GPU power at 0.1 s and down-sample across rates.
#[must_use]
pub fn run(ctx: &StudyContext) -> Fig02 {
    let bench = si256_hse();
    let plan = plan_for(&bench, 1, ctx);
    let spec = JobSpec {
        nodes: 1,
        gpu_power_cap_w: None,
        seed: 0xF16_0002,
        start_s: 0.0,
        init_host_s: 6.0,
        straggler: None,
        os_jitter: 0.0,
        phase_slowdown: None,
        collective_slowdown: None,
    };
    let result = execute(&plan, &spec, &ctx.network);
    let gpu = &result.node_traces[0].gpus[0];

    let base = Sampler::ideal(0.1).sample(gpu);
    let rows = RATES
        .iter()
        .map(|&rate| {
            let factor = (rate / 0.1).round() as usize;
            let series = base.downsample(factor);
            let vals = series.values();
            let mode = high_power_mode(vals);
            RateRow {
                rate_s: rate,
                max_w: series.max().unwrap_or(0.0),
                median_w: vpp_stats::describe::median(vals),
                min_w: series.min().unwrap_or(0.0),
                high_mode_w: mode.x,
                fwhm_w: fwhm(vals, mode),
                n_samples: series.len(),
            }
        })
        .collect();
    Fig02 { rows }
}

impl Fig02 {
    /// Spread of the high power mode across all rates, watts.
    #[must_use]
    pub fn mode_stability_w(&self) -> f64 {
        let modes: Vec<f64> = self.rows.iter().map(|r| r.high_mode_w).collect();
        modes.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            - modes.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

impl std::fmt::Display for Fig02 {
    fn fmt(&self, fmt: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let header = vec![
            "rate s".to_string(),
            "max W".to_string(),
            "median W".to_string(),
            "min W".to_string(),
            "high mode W".to_string(),
            "FWHM W".to_string(),
            "samples".to_string(),
        ];
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    f(r.rate_s, 1),
                    f(r.max_w, 0),
                    f(r.median_w, 0),
                    f(r.min_w, 0),
                    f(r.high_mode_w, 0),
                    f(r.fwhm_w, 1),
                    r.n_samples.to_string(),
                ]
            })
            .collect();
        writeln!(
            fmt,
            "{}",
            render_table(
                "Fig. 2 — per-GPU power statistics vs sampling rate (Si256_hse, 1 node)",
                &header,
                &rows
            )
        )?;
        writeln!(
            fmt,
            "high power mode spread across rates: {:.0} W",
            self.mode_stability_w()
        )
    }
}


impl Fig02 {
    /// Machine-readable export.
    #[must_use]
    pub fn csv(&self) -> String {
        let mut out =
            String::from("rate_s,max_w,median_w,min_w,high_mode_w,fwhm_w,samples\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{},{:.1},{:.1},{:.1},{:.1},{:.2},{}\n",
                r.rate_s, r.max_w, r.median_w, r.min_w, r.high_mode_w, r.fwhm_w, r.n_samples
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Fig02 {
        run(&StudyContext::quick())
    }

    #[test]
    fn mode_is_stable_across_rates() {
        let fig = fig();
        assert_eq!(fig.rows.len(), RATES.len());
        // Paper: "the high power mode itself remains unchanged".
        assert!(
            fig.mode_stability_w() < 25.0,
            "mode spread {} W",
            fig.mode_stability_w()
        );
    }

    #[test]
    fn max_never_increases_with_coarser_rates() {
        let fig = fig();
        for w in fig.rows.windows(2) {
            assert!(
                w[1].max_w <= w[0].max_w + 1e-9,
                "max rose from {} to {} between {}s and {}s",
                w[0].max_w,
                w[1].max_w,
                w[0].rate_s,
                w[1].rate_s
            );
        }
    }

    #[test]
    fn sample_counts_shrink_proportionally() {
        let fig = fig();
        let n0 = fig.rows[0].n_samples as f64;
        for r in &fig.rows {
            let expect = n0 * 0.1 / r.rate_s;
            assert!(
                (r.n_samples as f64) >= expect * 0.9 - 2.0
                    && (r.n_samples as f64) <= expect * 1.1 + 2.0,
                "rate {}: {} samples vs expected ~{expect}",
                r.rate_s,
                r.n_samples
            );
        }
    }

    #[test]
    fn mode_sits_near_the_gpu_hot_level() {
        let fig = fig();
        for r in &fig.rows {
            assert!(
                (300.0..400.0).contains(&r.high_mode_w),
                "rate {}: mode {}",
                r.rate_s,
                r.high_mode_w
            );
        }
    }
}
