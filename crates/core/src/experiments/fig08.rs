//! Fig. 8: Si256_hse power and energy-to-solution vs concurrency.
//!
//! Power stays steady over the efficient range of node counts and sags once
//! communication eats into computational intensity; energy-to-solution
//! rises monotonically with concurrency.

use crate::benchmarks::si256_hse;
use crate::experiments::{f, render_table};
use crate::protocol::{measure, RunConfig, StudyContext};

/// One concurrency point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConcurrencyRow {
    pub nodes: usize,
    pub node_mode_w: f64,
    pub node_mean_w: f64,
    pub runtime_s: f64,
    pub energy_mj: f64,
    pub efficiency: f64,
}

/// The figure's data.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig08 {
    pub rows: Vec<ConcurrencyRow>,
}

/// Node counts of the sweep.
pub const NODES: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// Run the concurrency sweep.
#[must_use]
pub fn run(ctx: &StudyContext) -> Fig08 {
    let bench = si256_hse();
    let mut rows: Vec<ConcurrencyRow> = NODES
        .iter()
        .map(|&n| {
            let mut cfg = RunConfig::nodes(n);
            cfg.seed_salt = 0x0800 + n as u64;
            let m = measure(&bench, &cfg, ctx);
            ConcurrencyRow {
                nodes: n,
                node_mode_w: m.node_summary.high_mode_w,
                node_mean_w: m.node_summary.mean_w,
                runtime_s: m.runtime_s,
                energy_mj: m.energy_j / 1e6,
                efficiency: 0.0,
            }
        })
        .collect();
    let t1 = rows[0].runtime_s;
    for r in &mut rows {
        r.efficiency = vpp_stats::parallel_efficiency(t1, r.nodes as f64, r.runtime_s);
    }
    Fig08 { rows }
}

impl std::fmt::Display for Fig08 {
    fn fmt(&self, fmt: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let header = vec![
            "nodes".to_string(),
            "mode W/node".to_string(),
            "mean W/node".to_string(),
            "runtime s".to_string(),
            "energy MJ".to_string(),
            "PE".to_string(),
        ];
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.nodes.to_string(),
                    f(r.node_mode_w, 0),
                    f(r.node_mean_w, 0),
                    f(r.runtime_s, 0),
                    f(r.energy_mj, 2),
                    f(r.efficiency, 2),
                ]
            })
            .collect();
        write!(
            fmt,
            "{}",
            render_table(
                "Fig. 8 — Si256_hse power & energy-to-solution vs concurrency",
                &header,
                &rows
            )
        )
    }
}


impl Fig08 {
    /// Machine-readable export.
    #[must_use]
    pub fn csv(&self) -> String {
        let mut out = String::from(
            "nodes,node_mode_w,node_mean_w,runtime_s,energy_mj,parallel_efficiency\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{},{:.1},{:.1},{:.1},{:.3},{:.3}\n",
                r.nodes, r.node_mode_w, r.node_mean_w, r.runtime_s, r.energy_mj, r.efficiency
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_rises_power_flat_then_drops() {
        // Reduced sweep for test speed: compute three points manually.
        let ctx = StudyContext::quick();
        let bench = si256_hse();
        let points: Vec<_> = [1usize, 4, 16]
            .iter()
            .map(|&n| {
                let m = measure(&bench, &RunConfig::nodes(n), &ctx);
                (n, m.node_summary.high_mode_w, m.energy_j, m.runtime_s)
            })
            .collect();
        // Energy monotonically increasing with concurrency.
        assert!(points[1].2 > points[0].2, "{points:?}");
        assert!(points[2].2 > points[1].2, "{points:?}");
        // Power roughly flat 1→4 nodes (efficient range)...
        let drift = (points[1].1 - points[0].1).abs() / points[0].1;
        assert!(drift < 0.12, "power drifted {drift}");
        // ...and visibly below the 1-node level by 16 nodes.
        assert!(
            points[2].1 < points[0].1,
            "power should sag at scale: {points:?}"
        );
    }
}
