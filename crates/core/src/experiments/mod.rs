//! One runner per paper table/figure.
//!
//! Every module exposes a `run(ctx) -> FigNN` (structured rows) and the
//! result implements `Display`, rendering the same rows/series the paper
//! reports. The `repro` binary calls all of them.

pub mod fig01;
pub mod fig02;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod capping;
pub mod predict_eval;
pub mod scaling;
pub mod table1;

/// Render an aligned text table: header row + data rows.
#[must_use]
pub fn render_table(title: &str, header: &[String], rows: &[Vec<String>]) -> String {
    let ncol = header.len();
    let mut widths: Vec<usize> = header.iter().map(String::len).collect();
    for row in rows {
        assert_eq!(row.len(), ncol, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(header));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncol - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Format a float with the given decimals.
#[must_use]
pub fn f(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let t = render_table(
            "T",
            &["a".into(), "bb".into()],
            &[vec!["1".into(), "2".into()], vec!["10".into(), "200".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines[0], "T");
        assert!(lines[1].ends_with("bb"));
        assert!(lines[3].ends_with("  2"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = render_table("T", &["a".into()], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(f(100.0, 0), "100");
    }
}
