//! Shared node-count sweep used by Figs. 4, 5 and 8.

use crate::benchmarks::Benchmark;
use crate::protocol::{measure, Measured, RunConfig, StudyContext};

/// One benchmark measured across node counts.
#[derive(Debug, Clone)]
pub struct BenchScaling {
    pub name: String,
    /// `(nodes, measurement)` in ascending node order.
    pub runs: Vec<(usize, Measured)>,
}

impl BenchScaling {
    /// Parallel efficiency at each node count relative to the smallest.
    #[must_use]
    pub fn efficiencies(&self) -> Vec<(usize, f64)> {
        let (n0, ref m0) = self.runs[0];
        self.runs
            .iter()
            .map(|(n, m)| {
                (
                    *n,
                    vpp_stats::parallel_efficiency(
                        m0.runtime_s,
                        *n as f64 / n0 as f64,
                        m.runtime_s,
                    ),
                )
            })
            .collect()
    }

    /// Node-0 high power mode at each node count.
    #[must_use]
    pub fn high_modes(&self) -> Vec<(usize, f64)> {
        self.runs
            .iter()
            .map(|(n, m)| (*n, m.node_summary.high_mode_w))
            .collect()
    }
}

/// Default node counts of the study's concurrency sweeps.
pub const NODE_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];

/// Measure every suite benchmark at each node count.
#[must_use]
pub fn measure_suite(
    benchmarks: &[Benchmark],
    node_counts: &[usize],
    ctx: &StudyContext,
) -> Vec<BenchScaling> {
    // One pool task per (benchmark, node count): finer grain than the old
    // per-benchmark rayon split, so a 16-node run cannot serialise the tail.
    let grid: Vec<(usize, usize)> = (0..benchmarks.len())
        .flat_map(|b| (0..node_counts.len()).map(move |n| (b, n)))
        .collect();
    let mut measured = vpp_substrate::par_map(grid, |(bi, ni)| {
        let n = node_counts[ni];
        let mut cfg = RunConfig::nodes(n);
        cfg.seed_salt = 0x5CA1_0000 + n as u64;
        (bi, n, measure(&benchmarks[bi], &cfg, ctx))
    });
    measured.sort_by_key(|&(bi, n, _)| (bi, n));
    let mut per_bench: Vec<Vec<(usize, Measured)>> =
        (0..benchmarks.len()).map(|_| Vec::new()).collect();
    for (bi, n, m) in measured {
        per_bench[bi].push((n, m));
    }
    benchmarks
        .iter()
        .zip(per_bench)
        .map(|(b, runs)| BenchScaling {
            name: b.name().to_string(),
            runs,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;

    #[test]
    fn scaling_runs_are_ordered_and_efficiencies_sane() {
        let ctx = StudyContext::quick();
        let data = measure_suite(&[benchmarks::b_hr105_hse()], &[1, 2], &ctx);
        assert_eq!(data.len(), 1);
        let eff = data[0].efficiencies();
        assert_eq!(eff[0], (1, 1.0));
        let (n, e) = eff[1];
        assert_eq!(n, 2);
        assert!(e > 0.1 && e <= 1.3, "efficiency {e}");
    }
}
