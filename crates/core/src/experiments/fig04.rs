//! Fig. 4: parallel efficiency of the seven benchmarks vs node count.

use crate::benchmarks::suite;
use crate::experiments::scaling::{measure_suite, BenchScaling, NODE_COUNTS};
use crate::experiments::{f, render_table};
use crate::protocol::StudyContext;

/// The figure's data: per-benchmark efficiency series.
#[derive(Debug, Clone)]
pub struct Fig04 {
    pub node_counts: Vec<usize>,
    /// `(benchmark, efficiencies aligned with node_counts)`.
    pub series: Vec<(String, Vec<f64>)>,
}

/// Compute from fresh scaling runs.
#[must_use]
pub fn run(ctx: &StudyContext) -> Fig04 {
    from_scaling(&measure_suite(&suite(), &NODE_COUNTS, ctx), &NODE_COUNTS)
}

/// Compute from pre-measured scaling data (shared with Fig. 5).
#[must_use]
pub fn from_scaling(data: &[BenchScaling], node_counts: &[usize]) -> Fig04 {
    Fig04 {
        node_counts: node_counts.to_vec(),
        series: data
            .iter()
            .map(|b| {
                (
                    b.name.clone(),
                    b.efficiencies().into_iter().map(|(_, e)| e).collect(),
                )
            })
            .collect(),
    }
}

impl std::fmt::Display for Fig04 {
    fn fmt(&self, fmt: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut header = vec!["benchmark".to_string()];
        header.extend(self.node_counts.iter().map(|n| format!("{n} nodes")));
        let rows: Vec<Vec<String>> = self
            .series
            .iter()
            .map(|(name, effs)| {
                let mut row = vec![name.clone()];
                row.extend(effs.iter().map(|e| f(*e, 2)));
                row
            })
            .collect();
        write!(
            fmt,
            "{}",
            render_table("Fig. 4 — parallel efficiency of VASP", &header, &rows)
        )
    }
}


impl Fig04 {
    /// Machine-readable export.
    #[must_use]
    pub fn csv(&self) -> String {
        let mut out = String::from("benchmark,nodes,parallel_efficiency\n");
        for (name, effs) in &self.series {
            for (n, e) in self.node_counts.iter().zip(effs) {
                out.push_str(&format!("{name},{n},{e:.3}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;
    use crate::experiments::scaling::measure_suite;

    #[test]
    fn efficiency_declines_with_nodes() {
        let ctx = StudyContext::quick();
        let data = measure_suite(&[benchmarks::pdo4()], &[1, 2, 4], &ctx);
        let fig = from_scaling(&data, &[1, 2, 4]);
        let effs = &fig.series[0].1;
        assert_eq!(effs[0], 1.0);
        assert!(effs[1] <= 1.05);
        assert!(effs[2] <= effs[1] + 0.05, "{effs:?}");
        assert!(effs[2] > 0.15, "unrealistically bad scaling: {effs:?}");
    }
}
