//! Fig. 13: Si256_hse performance under caps at varied node counts,
//! normalised per node count to the default limit.
//!
//! The paper: the cap response is essentially independent of concurrency —
//! free at 300 W, ≈9 % at 200 W, >60 % at 100 W at every node count.

use crate::benchmarks::si256_hse;
use crate::experiments::capping::CAPS;
use crate::experiments::{f, render_table};
use crate::protocol::{measure, RunConfig, StudyContext};

/// The figure's data.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig13 {
    pub node_counts: Vec<usize>,
    /// `series[i][j]` = normalised perf at `node_counts[i]`, `CAPS[j]`.
    pub series: Vec<Vec<f64>>,
}

/// Node counts of the sweep.
pub const NODES: [usize; 4] = [1, 2, 4, 8];

/// Run the sweep (node counts × caps).
#[must_use]
pub fn run(ctx: &StudyContext) -> Fig13 {
    run_with_nodes(ctx, &NODES)
}

/// Run with custom node counts (tests use a subset).
#[must_use]
pub fn run_with_nodes(ctx: &StudyContext, nodes: &[usize]) -> Fig13 {
    let bench = si256_hse();
    let series = nodes
        .iter()
        .map(|&n| {
            let runtimes: Vec<f64> = CAPS
                .iter()
                .map(|&cap| {
                    let mut cfg = RunConfig::capped(n, cap);
                    cfg.seed_salt = 0x1300 + n as u64;
                    measure(&bench, &cfg, ctx).runtime_s
                })
                .collect();
            runtimes.iter().map(|&t| runtimes[0] / t).collect()
        })
        .collect();
    Fig13 {
        node_counts: nodes.to_vec(),
        series,
    }
}

impl Fig13 {
    /// Largest spread of normalised perf across node counts at any cap.
    #[must_use]
    pub fn max_spread(&self) -> f64 {
        (0..CAPS.len())
            .map(|j| {
                let col: Vec<f64> = self.series.iter().map(|s| s[j]).collect();
                col.iter().copied().fold(f64::NEG_INFINITY, f64::max)
                    - col.iter().copied().fold(f64::INFINITY, f64::min)
            })
            .fold(0.0, f64::max)
    }
}

impl std::fmt::Display for Fig13 {
    fn fmt(&self, fmt: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut header = vec!["nodes".to_string()];
        header.extend(CAPS.iter().map(|c| format!("{c:.0} W")));
        let rows: Vec<Vec<String>> = self
            .node_counts
            .iter()
            .zip(&self.series)
            .map(|(n, perf)| {
                let mut row = vec![n.to_string()];
                row.extend(perf.iter().map(|x| f(*x, 2)));
                row
            })
            .collect();
        writeln!(
            fmt,
            "{}",
            render_table(
                "Fig. 13 — Si256_hse normalised performance vs cap, per node count",
                &header,
                &rows
            )
        )?;
        writeln!(
            fmt,
            "max spread across node counts at any cap: {:.2}",
            self.max_spread()
        )
    }
}


impl Fig13 {
    /// Machine-readable export.
    #[must_use]
    pub fn csv(&self) -> String {
        let mut out = String::from("nodes,cap_w,normalised_perf\n");
        for (n, perf) in self.node_counts.iter().zip(&self.series) {
            for (cap, p) in CAPS.iter().zip(perf) {
                out.push_str(&format!("{n},{cap:.0},{p:.3}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cap_response_is_concurrency_independent() {
        let fig = run_with_nodes(&StudyContext::quick(), &[1, 4]);
        // Same qualitative response at both node counts.
        for s in &fig.series {
            assert!(s[1] > 0.95, "300 W: {s:?}");
            assert!(s[2] < 0.97 && s[2] > 0.80, "200 W: {s:?}");
            assert!(s[3] < 0.60, "100 W: {s:?}");
        }
        assert!(
            fig.max_spread() < 0.15,
            "responses should align across node counts: {}",
            fig.max_spread()
        );
    }
}
