//! Fig. 5: high power mode per node for each benchmark vs node count.
//!
//! The paper's headline: power varies far more across *workloads*
//! (766–1810 W) than across *concurrency* (flat while parallel efficiency
//! stays ≥ ~70 %, visible drop below).

use crate::benchmarks::suite;
use crate::experiments::scaling::{measure_suite, BenchScaling, NODE_COUNTS};
use crate::experiments::{f, render_table};
use crate::protocol::StudyContext;

/// The figure's data: per-benchmark high-power-mode series.
#[derive(Debug, Clone)]
pub struct Fig05 {
    pub node_counts: Vec<usize>,
    /// `(benchmark, node-0 high power mode per node count)`.
    pub series: Vec<(String, Vec<f64>)>,
}

/// Compute from fresh scaling runs.
#[must_use]
pub fn run(ctx: &StudyContext) -> Fig05 {
    from_scaling(&measure_suite(&suite(), &NODE_COUNTS, ctx), &NODE_COUNTS)
}

/// Compute from pre-measured scaling data (shared with Fig. 4).
#[must_use]
pub fn from_scaling(data: &[BenchScaling], node_counts: &[usize]) -> Fig05 {
    Fig05 {
        node_counts: node_counts.to_vec(),
        series: data
            .iter()
            .map(|b| {
                (
                    b.name.clone(),
                    b.high_modes().into_iter().map(|(_, w)| w).collect(),
                )
            })
            .collect(),
    }
}

impl Fig05 {
    /// Range of 1-node high power modes across workloads, watts —
    /// the paper reports 766 to 1810 W.
    #[must_use]
    pub fn workload_range_w(&self) -> (f64, f64) {
        let first: Vec<f64> = self.series.iter().map(|(_, s)| s[0]).collect();
        (
            first.iter().copied().fold(f64::INFINITY, f64::min),
            first.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        )
    }
}

impl std::fmt::Display for Fig05 {
    fn fmt(&self, fmt: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut header = vec!["benchmark".to_string()];
        header.extend(self.node_counts.iter().map(|n| format!("{n} nodes")));
        let rows: Vec<Vec<String>> = self
            .series
            .iter()
            .map(|(name, modes)| {
                let mut row = vec![name.clone()];
                row.extend(modes.iter().map(|w| f(*w, 0)));
                row
            })
            .collect();
        writeln!(
            fmt,
            "{}",
            render_table(
                "Fig. 5 — high power mode per node (W) vs node count",
                &header,
                &rows
            )
        )?;
        let (lo, hi) = self.workload_range_w();
        writeln!(fmt, "1-node workload range: {lo:.0} – {hi:.0} W")
    }
}


impl Fig05 {
    /// Machine-readable export.
    #[must_use]
    pub fn csv(&self) -> String {
        let mut out = String::from("benchmark,nodes,high_mode_w\n");
        for (name, modes) in &self.series {
            for (n, w) in self.node_counts.iter().zip(modes) {
                out.push_str(&format!("{name},{n},{w:.1}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;
    use crate::experiments::scaling::measure_suite;

    #[test]
    fn workload_variation_exceeds_concurrency_variation() {
        let ctx = StudyContext::quick();
        let data = measure_suite(
            &[benchmarks::si256_hse(), benchmarks::gaasbi64()],
            &[1, 2],
            &ctx,
        );
        let fig = from_scaling(&data, &[1, 2]);
        let hse = &fig.series[0].1;
        let gaasbi = &fig.series[1].1;
        // Across workloads: hundreds of watts.
        assert!(hse[0] - gaasbi[0] > 600.0, "{hse:?} vs {gaasbi:?}");
        // Across concurrency (within PE ≥ 70 % territory): small.
        let drift = (hse[0] - hse[1]).abs() / hse[0];
        assert!(drift < 0.12, "power should be ~flat 1→2 nodes: {drift}");
    }
}
