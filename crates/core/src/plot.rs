//! Terminal plotting for the experiment reports.
//!
//! The repro binary's audience reads terminals, not PDFs: these helpers
//! render power timelines and histograms as compact Unicode charts with
//! axes, used by the Fig. 3 / Fig. 11 reports.

/// Eight-level vertical bar glyphs.
const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// One-line sparkline of `values` scaled between `lo` and `hi`.
/// Values outside the range are clamped.
#[must_use]
pub fn sparkline(values: &[f64], lo: f64, hi: f64) -> String {
    assert!(hi > lo, "bad range [{lo}, {hi}]");
    values
        .iter()
        .map(|&v| {
            let frac = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
            let idx = ((frac * 7.0).round() as usize).min(7);
            BARS[idx]
        })
        .collect()
}

/// Multi-row timeline chart with a labelled y-axis:
///
/// ```text
///  1800 |      ▄█▇▆
///  1200 |   ▂▅████▆
///   600 | ▁▄███████▇▂
///       +------------
/// ```
#[must_use]
pub fn timeline_chart(values: &[f64], rows: usize, lo: f64, hi: f64) -> String {
    assert!(rows >= 2, "need at least two rows");
    assert!(hi > lo, "bad range [{lo}, {hi}]");
    if values.is_empty() {
        return String::from("(no data)\n");
    }
    let mut out = String::new();
    for r in (0..rows).rev() {
        let row_lo = lo + (hi - lo) * r as f64 / rows as f64;
        let row_hi = lo + (hi - lo) * (r + 1) as f64 / rows as f64;
        let label = format!("{:>6.0} |", row_hi);
        out.push_str(&label);
        for &v in values {
            let c = if v >= row_hi {
                '█'
            } else if v > row_lo {
                let frac = (v - row_lo) / (row_hi - row_lo);
                BARS[((frac * 7.0).round() as usize).min(7)]
            } else {
                ' '
            };
            out.push(c);
        }
        out.push('\n');
    }
    out.push_str("       +");
    out.push_str(&"-".repeat(values.len()));
    out.push('\n');
    out
}

/// Horizontal histogram with counts:
///
/// ```text
///  400- 600 | ███ 12
///  600- 800 | ██████ 31
/// ```
#[must_use]
pub fn histogram_chart(edges: &[f64], counts: &[usize], max_width: usize) -> String {
    assert_eq!(edges.len(), counts.len() + 1, "edges must bound counts");
    assert!(max_width > 0);
    let peak = counts.iter().copied().max().unwrap_or(0).max(1);
    let mut out = String::new();
    for (i, &c) in counts.iter().enumerate() {
        let bar = "█".repeat(c * max_width / peak);
        out.push_str(&format!(
            "{:>5.0}-{:<5.0}| {bar} {c}\n",
            edges[i],
            edges[i + 1]
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_levels() {
        let s = sparkline(&[0.0, 0.5, 1.0], 0.0, 1.0);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars.len(), 3);
        assert_eq!(chars[0], '▁');
        assert_eq!(chars[2], '█');
    }

    #[test]
    fn sparkline_clamps_out_of_range() {
        let s = sparkline(&[-10.0, 10.0], 0.0, 1.0);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars[0], '▁');
        assert_eq!(chars[1], '█');
    }

    #[test]
    fn timeline_chart_shape() {
        let values = vec![500.0, 1000.0, 1800.0, 1800.0, 900.0];
        let chart = timeline_chart(&values, 3, 400.0, 2000.0);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 4, "3 rows + axis");
        assert!(lines[0].trim_start().starts_with("2000"));
        assert!(lines[3].contains("+-----"));
        // The peak value reaches into the top band (a partial bar there);
        // the lowest value leaves the top band empty.
        let top_row: Vec<char> = lines[0].chars().collect();
        let peak_col = top_row[top_row.len() - 3]; // third value
        assert_ne!(peak_col, ' ', "peak must mark the top band");
        let low_col = top_row[top_row.len() - 5]; // first value (500 W)
        assert_eq!(low_col, ' ');
        // The bottom band is solid under the peak column.
        let bottom_row: Vec<char> = lines[2].chars().collect();
        assert_eq!(bottom_row[bottom_row.len() - 3], '█');
    }

    #[test]
    fn timeline_chart_empty() {
        assert!(timeline_chart(&[], 3, 0.0, 1.0).contains("no data"));
    }

    #[test]
    fn histogram_chart_scales_to_peak() {
        let edges = vec![0.0, 10.0, 20.0];
        let counts = vec![2, 4];
        let chart = histogram_chart(&edges, &counts, 8);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[1].matches('█').count() == 8, "{chart}");
        assert!(lines[0].matches('█').count() == 4);
        assert!(lines[0].ends_with('2'));
    }

    #[test]
    #[should_panic(expected = "bad range")]
    fn inverted_range_panics() {
        let _ = sparkline(&[1.0], 2.0, 1.0);
    }
}
