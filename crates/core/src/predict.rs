//! A first-cut power predictor (§VI-C "Next Step — Predicting VASP Power").
//!
//! The paper identifies the key power drivers: plane-wave count (per-kernel
//! width), method (kernel mix and the width of its dominant stage), and
//! concurrency/k-points (communication and host dilution). This module fits
//! a small interpretable model on measured suite data:
//!
//! `P_node ≈ idle + s_class · range · u(width_class) · dilution(k-points)`
//!
//! with `u(x) = x/(1+x)` mirroring the hardware model's saturation curve
//! and `width_class` the width of the method's dominant stage (plain H·ψ
//! sweeps for DFT, exact-exchange batches for HSE, χ₀ contractions for
//! RPA). The two class factors `s` are fitted by least squares. It is a
//! *predictor interface* plus a reference implementation — the paper's
//! stated next step, not part of its evaluation — evaluated end-to-end by
//! `experiments::predict_eval`.

use vpp_dft::{SystemParams, Xc};

/// Inputs the batch system can extract from a job's input deck "without
/// costly computation" (§VI-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobFeatures {
    pub nplwv: f64,
    pub nsim: f64,
    pub nk: f64,
    pub kpar: f64,
    /// HSE-class hybrid job.
    pub hybrid: bool,
    /// ACFDT/RPA job.
    pub rpa: bool,
    /// Occupied bands (RPA width driver).
    pub nocc: f64,
    /// Basis size per band (RPA width driver).
    pub npw: f64,
    pub nodes: f64,
}

impl JobFeatures {
    /// Extract features from derived parameters and a node count.
    #[must_use]
    pub fn from_params(p: &SystemParams, nodes: usize) -> Self {
        Self {
            nplwv: p.nplwv as f64,
            nsim: p.nsim as f64,
            nk: p.nk as f64,
            kpar: p.kpar as f64,
            hybrid: matches!(p.xc, Xc::Hse),
            rpa: matches!(p.xc, Xc::Rpa),
            nocc: p.nbands_occ as f64,
            npw: p.npw as f64,
            nodes: nodes as f64,
        }
    }

    /// True for the computationally heavier-than-DFT classes.
    #[must_use]
    pub fn higher_order(&self) -> bool {
        self.hybrid || self.rpa
    }

    /// Width of the method's dominant GPU stage, in work units (mirrors
    /// the kernel widths `vpp-dft` emits).
    #[must_use]
    pub fn dominant_width(&self) -> f64 {
        if self.rpa {
            self.nocc * self.npw * 8.0
        } else if self.hybrid {
            self.nplwv * self.nsim * 6.0
        } else {
            self.nplwv * self.nsim * 2.0
        }
    }
}

/// The fitted predictor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerPredictor {
    /// Node idle floor, watts.
    pub idle_w: f64,
    /// Dynamic range to the node's practical peak, watts.
    pub range_w: f64,
    /// Width-saturation scale (work units), mirroring the GPU model.
    pub kappa: f64,
    /// Class factor for higher-order (HSE/RPA) methods.
    pub s_higher: f64,
    /// Class factor for basic DFT methods.
    pub s_dft: f64,
    /// Per-local-k-point dilution factor.
    pub k_dilution: f64,
}

impl PowerPredictor {
    /// Defaults matching the hardware model's envelope; class factors are
    /// refined by [`PowerPredictor::fit_method_factors`].
    #[must_use]
    pub fn baseline() -> Self {
        Self {
            idle_w: 460.0,
            range_w: 1450.0,
            kappa: 1.2e6,
            s_higher: 0.95,
            s_dft: 0.65,
            k_dilution: 0.012,
        }
    }

    fn terms(&self, f: &JobFeatures) -> f64 {
        let x = f.dominant_width() / self.kappa;
        let sat = x / (1.0 + x);
        let nk_local = (f.nk / f.kpar.max(1.0)).max(1.0);
        let dilution = 1.0 / (1.0 + self.k_dilution * (nk_local - 1.0));
        self.range_w * sat * dilution
    }

    /// Predicted per-node power, watts.
    #[must_use]
    pub fn predict_node_w(&self, f: &JobFeatures) -> f64 {
        let s = if f.higher_order() {
            self.s_higher
        } else {
            self.s_dft
        };
        self.idle_w + s * self.terms(f)
    }

    /// Refine the two class factors by least squares against measured
    /// `(features, node power)` pairs. Returns the RMS error in watts.
    pub fn fit_method_factors(&mut self, data: &[(JobFeatures, f64)]) -> f64 {
        assert!(!data.is_empty(), "need at least one observation");
        // The model is linear in each s given the rest: solve per class.
        for higher in [false, true] {
            let mut num = 0.0;
            let mut den = 0.0;
            for (f, p) in data.iter().filter(|(f, _)| f.higher_order() == higher) {
                let x = self.terms(f);
                let y = p - self.idle_w;
                num += x * y;
                den += x * x;
            }
            if den > 0.0 {
                let s = (num / den).clamp(0.05, 1.2);
                if higher {
                    self.s_higher = s;
                } else {
                    self.s_dft = s;
                }
            }
        }
        let mse: f64 = data
            .iter()
            .map(|(f, p)| {
                let e = self.predict_node_w(f) - p;
                e * e
            })
            .sum::<f64>()
            / data.len() as f64;
        mse.sqrt()
    }
}

impl Default for PowerPredictor {
    fn default() -> Self {
        Self::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn features(nplwv: f64, hybrid: bool, nk: f64) -> JobFeatures {
        JobFeatures {
            nplwv,
            nsim: 4.0,
            nk,
            kpar: 1.0,
            hybrid,
            rpa: false,
            nocc: 500.0,
            npw: 40_000.0,
            nodes: 1.0,
        }
    }

    #[test]
    fn higher_order_predicts_hotter() {
        let p = PowerPredictor::baseline();
        let hse = p.predict_node_w(&features(512_000.0, true, 1.0));
        let dft = p.predict_node_w(&features(512_000.0, false, 1.0));
        assert!(hse > dft + 200.0, "hse {hse}, dft {dft}");
    }

    #[test]
    fn rpa_width_comes_from_the_chi0_stage() {
        let p = PowerPredictor::baseline();
        let mut f = features(216_000.0, false, 1.0);
        f.rpa = true;
        // A small grid but a huge χ₀ contraction: prediction near the top.
        let w = p.predict_node_w(&f);
        assert!(w > 1700.0, "rpa predicted {w}");
    }

    #[test]
    fn more_planewaves_predicts_more_power() {
        let p = PowerPredictor::baseline();
        let small = p.predict_node_w(&features(100_000.0, false, 1.0));
        let large = p.predict_node_w(&features(1_000_000.0, false, 1.0));
        assert!(large > small);
    }

    #[test]
    fn kpoints_dilute_power() {
        let p = PowerPredictor::baseline();
        let gamma = p.predict_node_w(&features(343_000.0, false, 1.0));
        let mesh = p.predict_node_w(&features(343_000.0, false, 64.0));
        assert!(mesh < gamma);
    }

    #[test]
    fn predictions_stay_in_the_node_envelope() {
        let p = PowerPredictor::baseline();
        for nplwv in [1e4, 1e5, 1e6, 1e7] {
            for hybrid in [false, true] {
                let w = p.predict_node_w(&features(nplwv, hybrid, 1.0));
                assert!((400.0..2350.0).contains(&w), "w = {w}");
            }
        }
    }

    #[test]
    fn fitting_reduces_error() {
        let mut p = PowerPredictor::baseline();
        // Synthetic ground truth with different class factors.
        let truth = PowerPredictor {
            s_higher: 0.9,
            s_dft: 0.4,
            ..PowerPredictor::baseline()
        };
        let data: Vec<(JobFeatures, f64)> = [
            features(5e5, true, 1.0),
            features(1e5, true, 1.0),
            features(5e5, false, 1.0),
            features(2e5, false, 9.0),
        ]
        .into_iter()
        .map(|f| (f, truth.predict_node_w(&f)))
        .collect();
        let rms = p.fit_method_factors(&data);
        assert!(rms < 1.0, "rms = {rms}");
        assert!((p.s_higher - 0.9).abs() < 0.01);
        assert!((p.s_dft - 0.4).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "at least one observation")]
    fn fit_requires_data() {
        let _ = PowerPredictor::baseline().fit_method_factors(&[]);
    }
}
