//! Job specs for the multi-tenant `vpp serve` service.
//!
//! The substrate's [`serve`](vpp_substrate::serve) module is
//! workload-agnostic: it validates and runs jobs through the
//! [`JobHandler`] trait. This module supplies the reproduction's
//! implementation — a `POST /jobs` body is parsed into a
//! [`ServiceJobSpec`], checked against the Table I benchmark recipes and
//! the §III-B protocol's parameter ranges, and executed with
//! [`protocol::measure`] under the job's own trace session.

use crate::benchmarks::{suite, Benchmark};
use crate::protocol::{measure_cancellable, Canceled, RunConfig, StudyContext};
use vpp_stats::PowerSummary;
use vpp_substrate::json::Value;
use vpp_substrate::serve::{CancelToken, JobHandler};

/// Bounds a submitted spec must respect. Nodes cover the paper's scaling
/// sweep with headroom; caps are the A100's supported window; repeats and
/// sampling keep one job's cost bounded on a shared service.
const MAX_NODES: usize = 128;
const CAP_RANGE_W: (f64, f64) = (100.0, 400.0);
const MAX_REPEATS: usize = 16;
const SAMPLE_INTERVAL_RANGE_S: (f64, f64) = (0.01, 10.0);

/// A validated `POST /jobs` submission.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceJobSpec {
    /// Benchmark name from the Table I suite (e.g. `Si256_hse`).
    pub workload: String,
    /// Node count for the run.
    pub nodes: usize,
    /// Optional GPU power cap, watts.
    pub cap_w: Option<f64>,
    /// Protocol repeats (the paper uses 5; the service defaults to 2).
    pub repeats: usize,
    /// Telemetry sampling interval, seconds.
    pub sample_interval_s: f64,
    /// Seed salt so resubmitted jobs can draw distinct fleets.
    pub seed_salt: u64,
}

impl ServiceJobSpec {
    /// Parse and validate a submitted JSON document. Unknown keys are
    /// rejected outright — a typo like `"node"` silently defaulting would
    /// run the wrong experiment.
    ///
    /// # Errors
    /// A human-readable message naming the offending key or value.
    pub fn from_json(doc: &Value) -> Result<ServiceJobSpec, String> {
        let Value::Obj(entries) = doc else {
            return Err("job spec must be a JSON object".to_string());
        };
        const KNOWN: [&str; 6] = [
            "workload",
            "nodes",
            "cap_w",
            "repeats",
            "sample_interval_s",
            "seed_salt",
        ];
        for (key, _) in entries {
            if !KNOWN.contains(&key.as_str()) {
                return Err(format!(
                    "unknown key '{key}' (expected {})",
                    KNOWN.join("|")
                ));
            }
        }
        let workload = doc
            .get("workload")
            .and_then(Value::as_str)
            .ok_or("'workload' (string) is required")?
            .to_string();
        if !suite().iter().any(|b| b.name() == workload) {
            let names: Vec<String> =
                suite().iter().map(|b| b.name().to_string()).collect();
            return Err(format!(
                "unknown workload '{workload}'; the suite is {}",
                names.join(", ")
            ));
        }
        let nodes = match doc.get("nodes") {
            None => 1,
            Some(v) => as_count(v, "nodes")?,
        };
        if nodes == 0 || nodes > MAX_NODES {
            return Err(format!("'nodes' must be in 1..={MAX_NODES}, got {nodes}"));
        }
        let cap_w = match doc.get("cap_w") {
            None => None,
            Some(v) => {
                let cap = v
                    .as_f64()
                    .ok_or_else(|| format!("'cap_w' must be a number, got {}", v.compact()))?;
                let (lo, hi) = CAP_RANGE_W;
                if !(lo..=hi).contains(&cap) {
                    return Err(format!("'cap_w' must be in {lo}..={hi} W, got {cap}"));
                }
                Some(cap)
            }
        };
        let repeats = match doc.get("repeats") {
            None => StudyContext::quick().repeats,
            Some(v) => as_count(v, "repeats")?,
        };
        if repeats == 0 || repeats > MAX_REPEATS {
            return Err(format!(
                "'repeats' must be in 1..={MAX_REPEATS}, got {repeats}"
            ));
        }
        let sample_interval_s = match doc.get("sample_interval_s") {
            None => StudyContext::paper().sampler.interval_s,
            Some(v) => {
                let dt = v.as_f64().ok_or_else(|| {
                    format!("'sample_interval_s' must be a number, got {}", v.compact())
                })?;
                let (lo, hi) = SAMPLE_INTERVAL_RANGE_S;
                if !(lo..=hi).contains(&dt) {
                    return Err(format!(
                        "'sample_interval_s' must be in {lo}..={hi} s, got {dt}"
                    ));
                }
                dt
            }
        };
        let seed_salt = match doc.get("seed_salt") {
            None => 0,
            Some(v) => as_count(v, "seed_salt")? as u64,
        };
        Ok(ServiceJobSpec {
            workload,
            nodes,
            cap_w,
            repeats,
            sample_interval_s,
            seed_salt,
        })
    }

    /// The normalised document the service stores and echoes back —
    /// every default made explicit, so `GET /jobs/<id>` shows exactly
    /// what will run.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let mut obj = vec![
            (
                "workload".to_string(),
                Value::Str(self.workload.clone()),
            ),
            ("nodes".to_string(), Value::Num(self.nodes as f64)),
        ];
        if let Some(cap) = self.cap_w {
            obj.push(("cap_w".to_string(), Value::Num(cap)));
        }
        obj.push(("repeats".to_string(), Value::Num(self.repeats as f64)));
        obj.push((
            "sample_interval_s".to_string(),
            Value::Num(self.sample_interval_s),
        ));
        obj.push(("seed_salt".to_string(), Value::Num(self.seed_salt as f64)));
        Value::Obj(obj)
    }

    /// The benchmark this spec runs (validated to exist by `from_json`).
    #[must_use]
    pub fn benchmark(&self) -> Option<Benchmark> {
        suite().into_iter().find(|b| b.name() == self.workload)
    }
}

/// Parse a JSON number as a non-negative integer count.
fn as_count(v: &Value, key: &str) -> Result<usize, String> {
    let n = v
        .as_f64()
        .ok_or_else(|| format!("'{key}' must be a number, got {}", v.compact()))?;
    if n < 0.0 || n.fract() != 0.0 || n > u32::MAX as f64 {
        return Err(format!("'{key}' must be a non-negative integer, got {n}"));
    }
    Ok(n as usize)
}

/// The reproduction's [`JobHandler`]: specs validate against the
/// benchmark suite, and a run is one §III-B measurement
/// ([`protocol::measure`]) with the spec's repeats/sampling/cap applied.
/// The service binds the job's trace session to the runner thread and
/// keeps the whole measurement on it (`pool::serial`), so the per-repeat
/// spans land in that job's trace alone.
#[derive(Debug, Default, Clone, Copy)]
pub struct ProtocolJobHandler;

impl JobHandler for ProtocolJobHandler {
    fn validate(&self, spec: &Value) -> Result<Value, String> {
        ServiceJobSpec::from_json(spec).map(|s| s.to_json())
    }

    fn run(&self, spec: &Value, cancel: &CancelToken) -> Result<Value, String> {
        let spec = ServiceJobSpec::from_json(spec)?;
        let bench = spec
            .benchmark()
            .ok_or_else(|| format!("workload '{}' vanished from the suite", spec.workload))?;
        let mut ctx = StudyContext::paper();
        ctx.repeats = spec.repeats;
        ctx.sampler.interval_s = spec.sample_interval_s;
        let mut cfg = RunConfig::nodes(spec.nodes);
        cfg.cap_w = spec.cap_w;
        cfg.seed_salt = spec.seed_salt;
        // The repeat boundary is the protocol's cancel checkpoint: a
        // DELETE on a running job takes effect before the next repeat.
        let measured = match measure_cancellable(&bench, &cfg, &ctx, &|| cancel.is_canceled()) {
            Ok(m) => m,
            Err(Canceled) => return Err("canceled between repeats".to_string()),
        };
        let mut result = vec![
            (
                "workload".to_string(),
                Value::Str(measured.name.clone()),
            ),
            ("nodes".to_string(), Value::Num(measured.nodes as f64)),
            ("runtime_s".to_string(), Value::Num(measured.runtime_s)),
            ("energy_j".to_string(), Value::Num(measured.energy_j)),
            ("node".to_string(), summary_json(&measured.node_summary)),
            ("gpu".to_string(), summary_json(&measured.gpu_summary)),
            (
                "quality_flagged".to_string(),
                Value::Bool(measured.quality_flagged),
            ),
        ];
        if let Some(cap) = measured.cap_w {
            result.insert(2, ("cap_w".to_string(), Value::Num(cap)));
        }
        Ok(Value::Obj(result))
    }
}

fn summary_json(s: &PowerSummary) -> Value {
    Value::Obj(vec![
        ("high_mode_w".to_string(), Value::Num(s.high_mode_w)),
        ("fwhm_w".to_string(), Value::Num(s.fwhm_w)),
        ("mean_w".to_string(), Value::Num(s.mean_w)),
        ("median_w".to_string(), Value::Num(s.median_w)),
        ("n_samples".to_string(), Value::Num(s.n_samples as f64)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpp_substrate::json;

    fn parse(text: &str) -> Value {
        json::parse(text).expect("test literal parses")
    }

    #[test]
    fn minimal_spec_fills_defaults() {
        let spec =
            ServiceJobSpec::from_json(&parse(r#"{"workload": "B.hR105_hse"}"#)).unwrap();
        assert_eq!(spec.workload, "B.hR105_hse");
        assert_eq!(spec.nodes, 1);
        assert_eq!(spec.cap_w, None);
        assert_eq!(spec.repeats, StudyContext::quick().repeats);
        assert!((spec.sample_interval_s - 1.0).abs() < 1e-12);
        // Normalisation is idempotent.
        let round = ServiceJobSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(round, spec);
    }

    #[test]
    fn bad_specs_are_rejected_with_reasons() {
        let cases = [
            (r#"[1,2]"#, "must be a JSON object"),
            (r#"{}"#, "'workload' (string) is required"),
            (r#"{"workload": "NotABench"}"#, "unknown workload"),
            (r#"{"workload": "Si256_hse", "node": 2}"#, "unknown key 'node'"),
            (r#"{"workload": "Si256_hse", "nodes": 0}"#, "'nodes' must be in"),
            (r#"{"workload": "Si256_hse", "nodes": 2.5}"#, "non-negative integer"),
            (r#"{"workload": "Si256_hse", "cap_w": 950}"#, "'cap_w' must be in"),
            (r#"{"workload": "Si256_hse", "repeats": 99}"#, "'repeats' must be in"),
            (
                r#"{"workload": "Si256_hse", "sample_interval_s": 0}"#,
                "'sample_interval_s' must be in",
            ),
        ];
        for (text, needle) in cases {
            let err = ServiceJobSpec::from_json(&parse(text)).unwrap_err();
            assert!(err.contains(needle), "spec {text}: {err}");
        }
    }

    #[test]
    fn handler_runs_a_quick_measurement() {
        let handler = ProtocolJobHandler;
        let spec = handler
            .validate(&parse(
                r#"{"workload": "B.hR105_hse", "repeats": 1, "cap_w": 250}"#,
            ))
            .unwrap();
        let result = handler.run(&spec, &CancelToken::new()).unwrap();
        assert_eq!(
            result.get("workload").and_then(Value::as_str),
            Some("B.hR105_hse")
        );
        assert!(result.get("runtime_s").and_then(Value::as_f64).unwrap() > 0.0);
        assert!(result.get("energy_j").and_then(Value::as_f64).unwrap() > 0.0);
        assert!(result.get("cap_w").and_then(Value::as_f64).unwrap() == 250.0);
        assert!(result.get("node").and_then(|n| n.get("high_mode_w")).is_some());
    }

    #[test]
    fn handler_honours_a_preset_cancel_token() {
        let handler = ProtocolJobHandler;
        let spec = handler
            .validate(&parse(r#"{"workload": "B.hR105_hse", "repeats": 1}"#))
            .unwrap();
        // Token already set: the first repeat's checkpoint fires before
        // any fleet executes, so this returns quickly with the cancel
        // message rather than a measurement.
        let token = CancelToken::new();
        token.cancel();
        let err = handler.run(&spec, &token).unwrap_err();
        assert!(err.contains("canceled between repeats"), "{err}");
    }
}
