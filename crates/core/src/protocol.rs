//! The execution & measurement protocol of §III-B.
//!
//! Each benchmark runs five times; the run with the minimum total runtime is
//! the representative (it has the least chance of landing on underperforming
//! hardware). Runs land on independently drawn nodes. Power series are
//! collected at the production LDMS cadence and summarised with the KDE
//! methodology.

use crate::benchmarks::Benchmark;
use vpp_cluster::{execute, JobResult, JobSpec, NetworkModel};
use vpp_dft::{build_plan, CostModel, ParallelLayout, PhaseKind, ScfPlan};
use vpp_stats::PowerSummary;
use vpp_telemetry::{quarantine, DataQuality, QualityConfig, RawSeries, Sampler, TimeSeries};

/// Shared context for every experiment.
#[derive(Debug, Clone, Copy)]
pub struct StudyContext {
    pub network: NetworkModel,
    pub cost: CostModel,
    pub sampler: Sampler,
    /// Protocol repeats (the paper uses 5).
    pub repeats: usize,
    /// Base seed; repeat `i` of job `j` derives its fleet seed from this.
    pub base_seed: u64,
    /// Minimum telemetry coverage a measurement must reach before its
    /// summaries are trusted; below it the collection is re-run (bounded)
    /// and finally flagged — the §III-B.1 variant-node rule applied to
    /// the telemetry chain. The production 50 %-drop cadence sits near
    /// 0.5, so 0.35 passes normal collections and catches pathological
    /// ones.
    pub min_coverage: f64,
}

impl StudyContext {
    /// The configuration used throughout the reproduction.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            network: NetworkModel::perlmutter(),
            cost: CostModel::calibrated(),
            sampler: Sampler::ldms_production(),
            repeats: 5,
            base_seed: 0x5045_524c, // "PERL"
            min_coverage: 0.35,
        }
    }

    /// A faster context for tests/examples: 2 repeats.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            repeats: 2,
            ..Self::paper()
        }
    }

    /// Single-repeat context for micro-benchmarks.
    #[must_use]
    pub fn single() -> Self {
        Self {
            repeats: 1,
            ..Self::paper()
        }
    }
}

impl Default for StudyContext {
    fn default() -> Self {
        Self::paper()
    }
}

/// One measurement request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunConfig {
    pub nodes: usize,
    /// GPU power cap (None = default 400 W).
    pub cap_w: Option<f64>,
    /// Salt so distinct experiments draw distinct fleets.
    pub seed_salt: u64,
    /// Artificial slowdown injected into every repeat's jobs
    /// ([`JobSpec::phase_slowdown`]) — the regression fixture that
    /// `vpp trace diff` must rank as the culprit phase.
    pub perturb: Option<(PhaseKind, f64)>,
    /// Communication-side fixture ([`JobSpec::collective_slowdown`]):
    /// stretch every collective's network time so trace-diff triage can
    /// distinguish a communication regression from a compute one.
    pub perturb_collective: Option<f64>,
}

impl RunConfig {
    /// Uncapped run on `nodes` nodes.
    #[must_use]
    pub fn nodes(nodes: usize) -> Self {
        Self {
            nodes,
            cap_w: None,
            seed_salt: 0,
            perturb: None,
            perturb_collective: None,
        }
    }

    /// Capped run.
    #[must_use]
    pub fn capped(nodes: usize, cap_w: f64) -> Self {
        Self {
            cap_w: Some(cap_w),
            ..Self::nodes(nodes)
        }
    }

    /// This config with an injected phase slowdown.
    #[must_use]
    pub fn perturbed(mut self, phase: PhaseKind, factor: f64) -> Self {
        self.perturb = Some((phase, factor));
        self
    }

    /// This config with an injected collective/network slowdown.
    #[must_use]
    pub fn perturbed_collective(mut self, factor: f64) -> Self {
        self.perturb_collective = Some(factor);
        self
    }
}

/// The representative (min-runtime) measurement of a benchmark.
#[derive(Debug, Clone)]
pub struct Measured {
    pub name: String,
    pub nodes: usize,
    pub cap_w: Option<f64>,
    /// Runtime of the representative run, seconds.
    pub runtime_s: f64,
    /// Full job output of the representative run.
    pub result: JobResult,
    /// Node-0 total-power series at the production sampling rate.
    pub node_series: TimeSeries,
    /// KDE summary of the node-0 series.
    pub node_summary: PowerSummary,
    /// KDE summary of node-0 GPU-0.
    pub gpu_summary: PowerSummary,
    /// Energy-to-solution over all nodes, joules.
    pub energy_j: f64,
    /// Quality report of the node-0 series that passed the gate.
    pub node_quality: DataQuality,
    /// True when even re-collection could not reach
    /// [`StudyContext::min_coverage`] — treat the summaries as suspect,
    /// the way the paper discards variant-node runs.
    pub quality_flagged: bool,
}

/// Build the plan for a benchmark at a node count.
#[must_use]
pub fn plan_for(bench: &Benchmark, nodes: usize, ctx: &StudyContext) -> ScfPlan {
    build_plan(&bench.params(), &ParallelLayout::nodes(nodes), &ctx.cost)
}

/// A measurement stopped early because its cancellation check fired
/// (see [`measure_cancellable`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Canceled;

/// Run the full protocol: `ctx.repeats` runs on fresh fleets, keep the
/// fastest, sample and summarise it.
///
/// # Panics
/// If the benchmark produces an empty plan or zero-length series.
#[must_use]
pub fn measure(bench: &Benchmark, cfg: &RunConfig, ctx: &StudyContext) -> Measured {
    match measure_cancellable(bench, cfg, ctx, &|| false) {
        Ok(m) => m,
        Err(Canceled) => unreachable!("the never-cancel check cannot fire"),
    }
}

/// [`measure`] with a cooperative cancellation check: `canceled` is
/// polled at the start of every repeat, and a `true` abandons the
/// measurement — remaining repeats are skipped and nothing is sampled or
/// summarised. This is the long-running service's cancel hook; the
/// checkpoints are repeat boundaries because a single repeat is the unit
/// of useful work (a partial fleet execution summarises nothing).
///
/// # Errors
/// [`Canceled`] when the check fired before every repeat completed.
///
/// # Panics
/// If the benchmark produces an empty plan or zero-length series.
pub fn measure_cancellable(
    bench: &Benchmark,
    cfg: &RunConfig,
    ctx: &StudyContext,
    canceled: &(dyn Fn() -> bool + Sync),
) -> Result<Measured, Canceled> {
    let mut measure_span = vpp_substrate::span!(
        "protocol.measure",
        benchmark = bench.name(),
        nodes = cfg.nodes,
        repeats = ctx.repeats.max(1),
    );
    let plan = plan_for(bench, cfg.nodes, ctx);
    // Repeats are independent fleets — fan out on the substrate pool (runs
    // serially when a caller higher in the stack already holds the pool).
    // Each repeat carries its span id forward so the quality gate can
    // link any re-collection back to the measurement it rescued.
    let results: Vec<Option<(JobResult, Option<u64>)>> =
        vpp_substrate::par_map((0..ctx.repeats.max(1)).collect(), |rep| {
            if canceled() {
                return None;
            }
            let mut rep_span = vpp_substrate::span!("protocol.repeat", rep = rep);
            let spec = JobSpec {
                nodes: cfg.nodes,
                gpu_power_cap_w: cfg.cap_w,
                seed: ctx
                    .base_seed
                    .wrapping_add(cfg.seed_salt.wrapping_mul(0x9E37_79B9))
                    .wrapping_add(rep as u64 * 0x1000_0001),
                start_s: 0.0,
                init_host_s: 6.0,
                straggler: None,
                os_jitter: 0.0,
                phase_slowdown: cfg.perturb,
                collective_slowdown: cfg.perturb_collective,
            };
            let result = execute(&plan, &spec, &ctx.network);
            rep_span.record("runtime_s", result.runtime_s);
            Some((result, rep_span.id()))
        });

    let mut completed = Vec::with_capacity(results.len());
    for r in results {
        match r {
            Some(done) => completed.push(done),
            None => {
                vpp_substrate::trace::counter("protocol.canceled", 1);
                measure_span.record("canceled", true);
                return Err(Canceled);
            }
        }
    }
    let (best, best_span) = completed
        .into_iter()
        .min_by(|a, b| a.0.runtime_s.total_cmp(&b.0.runtime_s))
        .expect("at least one repeat");

    // Short runs starve the production 2-s cadence; fall back to a
    // high-rate capture (the paper used 0.1-s collection for methodology
    // studies, and Fig. 2 shows rates ≤5 s are equivalent for the mode).
    let sampler = if best.runtime_s < 64.0 * ctx.sampler.interval_s {
        Sampler::ideal((best.runtime_s / 64.0).max(0.1))
    } else {
        ctx.sampler
    };

    // Quality gate (§III-B.1 applied to the telemetry chain): assess the
    // collection's coverage through the quarantine screen; below the
    // threshold, re-collect with fresh drop seeds, and only flag the
    // measurement when retries cannot rescue it. Stuck-run detection is
    // off — simulated traces have genuinely constant phases.
    let assess = |series: &TimeSeries, interval_s: f64| -> DataQuality {
        let cfg = QualityConfig::new(interval_s).without_stuck_detection();
        quarantine(&RawSeries::from_series(series), &cfg).quality
    };
    let mut active = sampler;
    let mut node_series = active.sample(&best.node_traces[0].node);
    let mut node_quality = assess(&node_series, active.interval_s);
    for attempt in 1..=2u64 {
        if node_quality.coverage >= ctx.min_coverage {
            break;
        }
        vpp_substrate::trace::counter("protocol.recollections", 1);
        // A span (not a mark) so the re-collection has its own duration
        // and can carry `link_span` — the id of the repeat whose
        // measurement it is rescuing. Quarantine forensics walk this
        // link from a flagged series back to the job that produced it.
        let mut rc_span = vpp_substrate::trace::SpanGuard::open("protocol.recollect", || {
            vec![
                ("attempt", attempt.into()),
                ("coverage", node_quality.coverage.into()),
            ]
        });
        if let Some(id) = best_span {
            rc_span.record("link_span", id);
        }
        active.seed = sampler.seed.wrapping_add(attempt.wrapping_mul(0x9E37_79B9));
        node_series = active.sample(&best.node_traces[0].node);
        node_quality = assess(&node_series, active.interval_s);
        rc_span.record("new_coverage", node_quality.coverage);
    }
    let quality_flagged = node_quality.coverage < ctx.min_coverage;
    if quality_flagged {
        vpp_substrate::trace::counter("protocol.quality_flagged", 1);
    }
    if quality_flagged && node_series.len() < 8 {
        // Pathological drop rates can starve the series entirely; a final
        // drop-free re-collection keeps the pipeline total, with the flag
        // recording that production telemetry never reached the bar.
        vpp_substrate::trace::counter("protocol.rescue_recollections", 1);
        let mut rescue_span =
            vpp_substrate::trace::SpanGuard::open("protocol.rescue_recollect", || {
                vec![("coverage", node_quality.coverage.into())]
            });
        if let Some(id) = best_span {
            rescue_span.record("link_span", id);
        }
        active = Sampler::ideal((best.runtime_s / 64.0).max(0.1));
        node_series = active.sample(&best.node_traces[0].node);
        node_quality = assess(&node_series, active.interval_s);
        rescue_span.record("new_coverage", node_quality.coverage);
    }
    vpp_substrate::trace::gauge("protocol.coverage", node_quality.coverage);
    let gpu_series = active.sample(&best.node_traces[0].gpus[0]);
    assert!(
        node_series.len() >= 8,
        "series too short to summarise ({} samples) — benchmark {} ran only {:.1}s",
        node_series.len(),
        bench.name(),
        best.runtime_s
    );

    measure_span.record("runtime_s", best.runtime_s);
    measure_span.record("energy_j", best.energy_j());
    measure_span.record("coverage", node_quality.coverage);
    measure_span.record("flagged", quality_flagged);

    Ok(Measured {
        name: bench.name().to_string(),
        nodes: cfg.nodes,
        cap_w: cfg.cap_w,
        runtime_s: best.runtime_s,
        energy_j: best.energy_j(),
        node_summary: PowerSummary::from_samples(node_series.values()),
        gpu_summary: PowerSummary::from_samples(gpu_series.values()),
        node_series,
        result: best,
        node_quality,
        quality_flagged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;

    #[test]
    fn measure_produces_consistent_summaries() {
        let bench = benchmarks::b_hr105_hse(); // smallest/fastest benchmark
        let m = measure(&bench, &RunConfig::nodes(1), &StudyContext::quick());
        assert_eq!(m.nodes, 1);
        assert!(m.runtime_s > 10.0, "runtime {}", m.runtime_s);
        assert!(m.energy_j > 0.0);
        assert!(m.node_summary.high_mode_w > 400.0, "{:?}", m.node_summary);
        assert!(m.node_summary.high_mode_w < 2350.0);
        assert!(m.gpu_summary.high_mode_w <= 400.0 * 1.2);
    }

    #[test]
    fn min_runtime_selection_beats_mean() {
        let bench = benchmarks::b_hr105_hse();
        let ctx = StudyContext::quick();
        let m = measure(&bench, &RunConfig::nodes(1), &ctx);
        // Re-run each repeat individually: representative must be the min.
        let plan = plan_for(&bench, 1, &ctx);
        let mut runtimes = Vec::new();
        for rep in 0..ctx.repeats {
            let spec = vpp_cluster::JobSpec {
                nodes: 1,
                gpu_power_cap_w: None,
                seed: ctx.base_seed.wrapping_add(rep as u64 * 0x1000_0001),
                start_s: 0.0,
                init_host_s: 6.0,
                straggler: None,
                os_jitter: 0.0,
                phase_slowdown: None,
                collective_slowdown: None,
            };
            runtimes.push(execute(&plan, &spec, &ctx.network).runtime_s);
        }
        let min = runtimes.iter().copied().fold(f64::INFINITY, f64::min);
        assert!((m.runtime_s - min).abs() < 1e-9);
    }

    #[test]
    fn healthy_collection_passes_the_quality_gate() {
        let bench = benchmarks::b_hr105_hse();
        let m = measure(&bench, &RunConfig::nodes(1), &StudyContext::quick());
        assert!(!m.quality_flagged, "{:?}", m.node_quality);
        assert!(m.node_quality.coverage >= 0.35, "{:?}", m.node_quality);
        assert_eq!(m.node_quality.n_kept, m.node_series.len());
    }

    #[test]
    fn unreachable_coverage_threshold_flags_instead_of_panicking() {
        let bench = benchmarks::b_hr105_hse();
        let mut ctx = StudyContext::quick();
        // 70 % drops can never reach 90 % coverage: the gate must retry,
        // give up, and flag — not panic.
        ctx.sampler = Sampler::new(0.25, 0.7, 0xBAD);
        ctx.min_coverage = 0.9;
        let m = measure(&bench, &RunConfig::nodes(1), &ctx);
        assert!(m.quality_flagged);
        assert!(m.node_quality.coverage < 0.9, "{:?}", m.node_quality);
        assert!(m.node_summary.high_mode_w > 400.0, "summaries still usable");
    }

    #[test]
    fn total_sample_loss_is_rescued_by_recollection() {
        let bench = benchmarks::b_hr105_hse();
        let mut ctx = StudyContext::quick();
        // drop_prob == 1.0 starves the series completely; the gate's final
        // drop-free re-collection keeps the pipeline total.
        ctx.sampler = Sampler::new(0.25, 1.0, 3);
        let m = measure(&bench, &RunConfig::nodes(1), &ctx);
        assert!(m.quality_flagged, "production telemetry never reached the bar");
        assert!(m.node_series.len() >= 8);
        assert!(m.node_quality.coverage > 0.9, "rescue is drop-free");
    }

    #[test]
    fn recollections_are_spans_linked_to_the_rescued_repeat() {
        let bench = benchmarks::b_hr105_hse();
        let mut ctx = StudyContext::quick();
        ctx.sampler = Sampler::new(0.25, 0.7, 0xBAD);
        ctx.min_coverage = 0.9; // unreachable: forces re-collections
        let session = vpp_substrate::trace::session(1 << 20);
        let m = measure(&bench, &RunConfig::nodes(1), &ctx);
        let report = session.finish();
        assert!(m.quality_flagged);
        assert_eq!(report.counters["protocol.recollections"], 2);

        let spans = report.spans();
        let recollects: Vec<_> = spans
            .iter()
            .filter(|s| s.name == "protocol.recollect")
            .collect();
        assert_eq!(recollects.len(), 2, "both retries must be spans");
        // Every re-collection links to the repeat whose measurement it
        // rescued: the one that produced the representative runtime.
        let best_rep = spans
            .iter()
            .find(|s| {
                s.name == "protocol.repeat"
                    && s.field_f64("runtime_s")
                        .is_some_and(|r| (r - m.runtime_s).abs() < 1e-12)
            })
            .expect("the representative repeat span");
        for rc in &recollects {
            assert_eq!(
                rc.field_f64("link_span"),
                Some(best_rep.id as f64),
                "re-collection must link the rescued measurement"
            );
            assert!(rc.field_f64("attempt").is_some());
            assert!(rc.field_f64("new_coverage").is_some());
            assert!(rc.duration_ns().is_some(), "re-collection must close");
        }
        // The final coverage is exported as a gauge for scrapers.
        assert!(report.gauges["protocol.coverage"] < 0.9);
    }

    #[test]
    fn cancellation_stops_between_repeats() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let bench = benchmarks::b_hr105_hse();
        let ctx = StudyContext::quick(); // 2 repeats
        // Run serially so the repeat order (and thus the check count) is
        // deterministic: the first repeat passes its check, the second
        // sees the flag and abandons the measurement.
        let checks = AtomicUsize::new(0);
        let out = vpp_substrate::pool::serial(|| {
            measure_cancellable(&bench, &RunConfig::nodes(1), &ctx, &|| {
                checks.fetch_add(1, Ordering::SeqCst) >= 1
            })
        });
        assert!(matches!(out, Err(Canceled)), "second repeat must cancel");
        assert_eq!(checks.load(Ordering::SeqCst), 2, "one check per repeat");
        // A check that never fires is exactly `measure`.
        let ok = measure_cancellable(&bench, &RunConfig::nodes(1), &ctx, &|| false)
            .expect("nothing canceled");
        assert!(ok.runtime_s > 10.0);
    }

    #[test]
    fn perturbed_config_slows_only_the_target_phase() {
        let bench = benchmarks::b_hr105_hse();
        let ctx = StudyContext::single();
        let base = measure(&bench, &RunConfig::nodes(1), &ctx);
        let cfg = RunConfig::nodes(1).perturbed(vpp_dft::PhaseKind::ScfIter, 1.5);
        let slow = measure(&bench, &cfg, &ctx);
        assert!(slow.runtime_s > base.runtime_s * 1.1);
        let again = measure(&bench, &cfg, &ctx);
        assert_eq!(slow.runtime_s, again.runtime_s, "injection is deterministic");
    }

    #[test]
    fn capped_measure_is_slower_or_equal() {
        let bench = benchmarks::si256_hse();
        let ctx = StudyContext::quick();
        let base = measure(&bench, &RunConfig::nodes(1), &ctx);
        let capped = measure(&bench, &RunConfig::capped(1, 200.0), &ctx);
        assert!(capped.runtime_s >= base.runtime_s * 0.999);
        assert!(capped.gpu_summary.high_mode_w <= 210.0);
    }
}
