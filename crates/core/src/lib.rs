//! The study itself: benchmark suite, measurement protocol, and the
//! experiment runners that regenerate every table and figure of the paper.
//!
//! * [`benchmarks`] — the seven Table I workloads, pinned to the published
//!   electron/ion counts, FFT grids, NBANDS, NELM, k-meshes.
//! * [`protocol`] — the §III-B execution & measurement protocol: five
//!   repeats on freshly drawn nodes, DGEMM/STREAM screening prologue,
//!   min-runtime selection, LDMS-rate sampling, KDE summaries.
//! * [`experiments`] — one runner per table/figure (`table1`, `fig01` …
//!   `fig13`), each returning structured rows plus a rendered text table.
//! * [`predict`] — the §VI-C "next step": a first-cut power predictor from
//!   input parameters.
//! * [`flight`] — the flight recorder: per-benchmark trace baselines for
//!   `vpp trace diff` regression triage, and the per-phase
//!   energy-to-solution table.

pub mod benchmarks;
pub mod experiments;
pub mod flight;
pub mod jobs;
pub mod plot;
pub mod predict;
pub mod protocol;

pub use benchmarks::{suite, Benchmark};
pub use jobs::{ProtocolJobHandler, ServiceJobSpec};
pub use protocol::{measure, measure_cancellable, Canceled, Measured, RunConfig, StudyContext};
