//! The seven VASP benchmarks of Table I.
//!
//! Every published computational parameter — electrons, ions, functional,
//! algorithm, NELM, NBANDS, FFT grid / NPLWV, k-mesh, KPAR — is pinned here
//! and checked by tests. Lattices for the non-silicon systems are derived
//! from the published FFT grids (the cost model only consumes grid, basis
//! size, and volume).

use vpp_dft::{Algo, Element, Incar, Supercell, SystemParams, Xc};

/// One benchmark: structure + input deck + study metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Benchmark {
    pub cell: Supercell,
    pub deck: Incar,
    /// Node count used for the power-capping studies (Figs. 10, 12): the
    /// count optimising runtime while keeping ≥70 % parallel efficiency.
    pub cap_study_nodes: usize,
}

impl Benchmark {
    /// The benchmark's name (Table I row).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.cell.name
    }

    /// Derived computational parameters.
    #[must_use]
    pub fn params(&self) -> SystemParams {
        SystemParams::derive(&self.cell, &self.deck)
    }
}

fn deck(algo: Algo, xc: Xc, nelm: usize) -> Incar {
    let mut d = Incar::default_deck();
    d.algo = algo;
    d.xc = xc;
    d.nelm = nelm;
    d
}

/// Si256_hse: 256-atom silicon supercell with a vacancy (255 ions), HSE
/// hybrid functional, damped CG.
#[must_use]
pub fn si256_hse() -> Benchmark {
    let lattice = Supercell::silicon(256).lattice_a;
    let cell = Supercell::new("Si256_hse", vec![(Element::Si, 255)], lattice);
    let mut d = deck(Algo::Damped, Xc::Hse, 41);
    d.nbands = Some(640);
    Benchmark {
        cell,
        deck: d,
        cap_study_nodes: 2,
    }
}

/// B.hR105_hse: the 105-atom β-boron structure, HSE, damped CG.
#[must_use]
pub fn b_hr105_hse() -> Benchmark {
    let lattice = Supercell::lattice_from_grid([48, 48, 48], Element::B.enmax_ev());
    let cell = Supercell::new("B.hR105_hse", vec![(Element::B, 105)], lattice);
    let mut d = deck(Algo::Damped, Xc::Hse, 17);
    d.nbands = Some(256);
    Benchmark {
        cell,
        deck: d,
        cap_study_nodes: 1,
    }
}

/// PdO4: 348-atom PdO slab, LDA, RMM-DIIS (`VeryFast`).
#[must_use]
pub fn pdo4() -> Benchmark {
    let lattice = Supercell::lattice_from_grid([80, 120, 54], 400.0);
    let cell = Supercell::new(
        "PdO4",
        vec![(Element::Pd, 300), (Element::O, 48)],
        lattice,
    );
    let mut d = deck(Algo::VeryFast, Xc::Lda, 60);
    d.nbands = Some(2048);
    Benchmark {
        cell,
        deck: d,
        cap_study_nodes: 2,
    }
}

/// PdO2: the 174-atom half of PdO4.
#[must_use]
pub fn pdo2() -> Benchmark {
    let lattice = Supercell::lattice_from_grid([80, 60, 54], 400.0);
    let cell = Supercell::new(
        "PdO2",
        vec![(Element::Pd, 150), (Element::O, 24)],
        lattice,
    );
    let mut d = deck(Algo::VeryFast, Xc::Lda, 60);
    d.nbands = Some(1024);
    Benchmark {
        cell,
        deck: d,
        cap_study_nodes: 2,
    }
}

/// GaAsBi-64: 64-atom dilute-bismide ternary alloy, GGA, metallic →
/// blocked-Davidson + RMM-DIIS (`Fast`), 4×4×4 k-mesh, KPAR 2.
#[must_use]
pub fn gaasbi64() -> Benchmark {
    let lattice = Supercell::lattice_from_grid([70, 70, 70], Element::Ga.enmax_ev());
    let cell = Supercell::new(
        "GaAsBi-64",
        vec![(Element::Ga, 32), (Element::As, 31), (Element::Bi, 1)],
        lattice,
    );
    let mut d = deck(Algo::Fast, Xc::Gga, 60);
    d.nbands = Some(192);
    d.kpoints = [4, 4, 4];
    d.kpar = 2;
    Benchmark {
        cell,
        deck: d,
        cap_study_nodes: 2,
    }
}

/// CuC_vdw: Cu(111) slab with adsorbed carbon, van der Waals functional,
/// RMM-DIIS, 3×3×1 k-mesh.
#[must_use]
pub fn cuc_vdw() -> Benchmark {
    let lattice = Supercell::lattice_from_grid([70, 70, 210], 400.0);
    let cell = Supercell::new(
        "CuC_vdw",
        vec![(Element::Cu, 96), (Element::C, 2)],
        lattice,
    );
    let mut d = deck(Algo::VeryFast, Xc::VdwDf, 60);
    d.nbands = Some(640);
    d.kpoints = [3, 3, 1];
    Benchmark {
        cell,
        deck: d,
        cap_study_nodes: 2,
    }
}

/// Si128_acfdtr: 128-atom silicon supercell, ACFDT/RPA with
/// NBANDSEXACT = 23506.
#[must_use]
pub fn si128_acfdtr() -> Benchmark {
    let lattice = Supercell::lattice_from_grid([60, 60, 60], Element::Si.enmax_ev());
    let cell = Supercell::new("Si128_acfdtr", vec![(Element::Si, 128)], lattice);
    let mut d = deck(Algo::Normal, Xc::Rpa, 12);
    d.nbandsexact = Some(23_506);
    Benchmark {
        cell,
        deck: d,
        cap_study_nodes: 1,
    }
}

/// The full seven-benchmark suite, in Table I column order.
#[must_use]
pub fn suite() -> Vec<Benchmark> {
    vec![
        si256_hse(),
        b_hr105_hse(),
        pdo4(),
        pdo2(),
        gaasbi64(),
        cuc_vdw(),
        si128_acfdtr(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_seven_benchmarks_with_unique_names() {
        let s = suite();
        assert_eq!(s.len(), 7);
        let names: std::collections::HashSet<_> =
            s.iter().map(|b| b.name().to_string()).collect();
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn electrons_and_ions_match_table1() {
        let expect = [
            ("Si256_hse", 1020, 255),
            ("B.hR105_hse", 315, 105),
            ("PdO4", 3288, 348),
            ("PdO2", 1644, 174),
            ("GaAsBi-64", 266, 64),
            ("CuC_vdw", 1064, 98),
            ("Si128_acfdtr", 512, 128),
        ];
        for (b, &(name, electrons, ions)) in suite().iter().zip(&expect) {
            assert_eq!(b.name(), name);
            assert_eq!(b.cell.n_electrons(), electrons, "{name} electrons");
            assert_eq!(b.cell.n_ions(), ions, "{name} ions");
        }
    }

    #[test]
    fn fft_grids_and_nplwv_match_table1() {
        let expect = [
            ("Si256_hse", [80, 80, 80], 512_000),
            ("B.hR105_hse", [48, 48, 48], 110_592),
            ("PdO4", [80, 120, 54], 518_400),
            ("PdO2", [80, 60, 54], 259_200),
            ("GaAsBi-64", [70, 70, 70], 343_000),
            ("CuC_vdw", [70, 70, 210], 1_029_000),
            ("Si128_acfdtr", [60, 60, 60], 216_000),
        ];
        for (b, &(name, grid, nplwv)) in suite().iter().zip(&expect) {
            let p = b.params();
            assert_eq!(p.fft_grid, grid, "{name} grid");
            assert_eq!(p.nplwv, nplwv, "{name} NPLWV");
        }
    }

    #[test]
    fn nbands_match_table1() {
        let expect = [640, 256, 2048, 1024, 192, 640, 320];
        for (b, &nb) in suite().iter().zip(&expect) {
            assert_eq!(b.params().nbands, nb, "{}", b.name());
        }
    }

    #[test]
    fn nelm_matches_table1() {
        let expect = [41, 17, 60, 60, 60, 60, 12];
        for (b, &nelm) in suite().iter().zip(&expect) {
            assert_eq!(b.params().nelm, nelm, "{}", b.name());
        }
    }

    #[test]
    fn kpoints_and_kpar_match_table1() {
        let s = suite();
        let gaasbi = &s[4];
        assert_eq!(gaasbi.deck.kpoints, [4, 4, 4]);
        assert_eq!(gaasbi.deck.kpar, 2);
        let cuc = &s[5];
        assert_eq!(cuc.deck.kpoints, [3, 3, 1]);
        assert_eq!(cuc.deck.kpar, 1);
        for b in &[&s[0], &s[1], &s[2], &s[3], &s[6]] {
            assert_eq!(b.deck.kpoints, [1, 1, 1], "{}", b.name());
        }
    }

    #[test]
    fn si128_has_published_nbandsexact() {
        assert_eq!(si128_acfdtr().params().nbandsexact, Some(23_506));
    }

    #[test]
    fn functional_assignment_matches_table1() {
        let s = suite();
        assert_eq!(s[0].deck.xc, Xc::Hse);
        assert_eq!(s[1].deck.xc, Xc::Hse);
        assert_eq!(s[2].deck.xc, Xc::Lda);
        assert_eq!(s[3].deck.xc, Xc::Lda);
        assert_eq!(s[4].deck.xc, Xc::Gga);
        assert_eq!(s[5].deck.xc, Xc::VdwDf);
        assert_eq!(s[6].deck.xc, Xc::Rpa);
    }

    #[test]
    fn all_decks_validate() {
        for b in suite() {
            assert_eq!(b.deck.validate(), Ok(()), "{}", b.name());
        }
    }
}
