//! Flight recorder — per-benchmark performance baselines, regression
//! triage, and the per-phase energy table (DESIGN.md §3.5).
//!
//! A *baseline* is captured by running the §III-B protocol under a trace
//! session and rolling the event log up into per-span-name totals: the
//! whole-run [`TraceAggregate`] plus one aggregate per `protocol.repeat`
//! subtree. The recipe is pinned ([`baseline_ctx`] / [`baseline_cfg`]) so
//! a stored baseline and a later re-run are comparable sample-for-sample;
//! the simulator is deterministic per seed, so an unperturbed re-run
//! reproduces the baseline's sim-time and energy aggregates exactly, and
//! any paired delta `vpp_stats::trace_diff` flags is a real change in the
//! modelled execution, not noise.

use crate::benchmarks::{suite, Benchmark};
use crate::experiments::{f, render_table};
use crate::protocol::{self, Measured, RunConfig, StudyContext};
use vpp_cluster::{execute, JobSpec};
use vpp_substrate::bench::TraceBaseline;
use vpp_substrate::span;
use vpp_substrate::trace;

/// Bench-report group (`BENCH_results.json`) holding the stored baselines.
pub const BASELINE_GROUP: &str = "trace_baselines";

/// Span whose subtrees become the per-repeat baseline samples.
pub const SAMPLE_SPAN: &str = "protocol.repeat";

/// Protocol repeats in the baseline recipe: enough for a paired bootstrap,
/// cheap enough to re-run on every triage.
pub const BASELINE_REPEATS: usize = 3;

/// Event budget for flight-recorder sessions. Admission past it drops
/// events, which [`capture`] treats as a hard error.
pub const SESSION_CAPACITY: usize = 1 << 23;

/// The baseline study context: paper settings at [`BASELINE_REPEATS`].
#[must_use]
pub fn baseline_ctx() -> StudyContext {
    StudyContext {
        repeats: BASELINE_REPEATS,
        ..StudyContext::paper()
    }
}

/// The baseline run shape: one uncapped node.
#[must_use]
pub fn baseline_cfg() -> RunConfig {
    RunConfig::nodes(1)
}

/// Measure `bench` under a trace session and roll the report into a
/// [`TraceBaseline`] — the re-run side of `vpp trace diff`, and the same
/// rollup `Harness::bench_traced` stores.
///
/// # Panics
/// If the session overflows [`SESSION_CAPACITY`]: a truncated baseline
/// would silently bias every later comparison.
#[must_use]
pub fn capture(bench: &Benchmark, cfg: &RunConfig, ctx: &StudyContext) -> (Measured, TraceBaseline) {
    let session = trace::session(SESSION_CAPACITY);
    let m = protocol::measure(bench, cfg, ctx);
    let report = session.finish();
    assert_eq!(
        report.dropped, 0,
        "flight-recorder session for '{}' overflowed its event budget",
        m.name
    );
    let baseline = TraceBaseline {
        aggregate: report.aggregate(),
        samples: report.aggregates_under(SAMPLE_SPAN),
        tolerances: std::collections::BTreeMap::new(),
    };
    (m, baseline)
}

/// One row of the per-phase energy-to-solution table.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseEnergyRow {
    pub benchmark: String,
    /// Phase span name (`phase.init`, `phase.scf_iter`, …).
    pub phase: String,
    /// Plan phases of this kind (SCF iterations, diagonalisation blocks).
    pub count: u64,
    /// Sim-time the phases spanned, seconds.
    pub sim_s: f64,
    /// Energy attributed to the phases' op ranges, joules.
    pub energy_j: f64,
    /// Fraction of the job's total energy.
    pub share: f64,
}

/// The per-phase energy table: where each benchmark's energy to solution
/// actually goes, from the executor's exact per-phase attribution.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseEnergy {
    pub rows: Vec<PhaseEnergyRow>,
}

/// Execute every Table I benchmark once (one node) under a trace session
/// and read the per-phase energy split out of the span aggregates. Each
/// workload runs inside its own `flight.workload` wrapper span, so the
/// rollup stays correct even when other instrumented work shares the
/// session window.
#[must_use]
pub fn phase_energy(ctx: &StudyContext) -> PhaseEnergy {
    let benches = suite();
    let session = trace::session(SESSION_CAPACITY);
    for (i, b) in benches.iter().enumerate() {
        let plan = protocol::plan_for(b, 1, ctx);
        let _wrap = span!("flight.workload", rep = i);
        std::hint::black_box(execute(&plan, &JobSpec::new(1), &ctx.network));
    }
    let report = session.finish();
    let aggs = report.aggregates_under("flight.workload");
    assert_eq!(aggs.len(), benches.len(), "one aggregate per workload");

    let mut rows = Vec::new();
    for (agg, b) in aggs.iter().zip(&benches) {
        let phases: Vec<_> = agg
            .spans
            .iter()
            .filter(|s| s.name.starts_with("phase."))
            .collect();
        let total: f64 = phases.iter().map(|s| s.energy_j).sum();
        for s in phases {
            rows.push(PhaseEnergyRow {
                benchmark: b.name().to_string(),
                phase: s.name.clone(),
                count: s.count,
                sim_s: s.sim_s,
                energy_j: s.energy_j,
                share: s.energy_j / total.max(1e-12),
            });
        }
    }
    PhaseEnergy { rows }
}

impl std::fmt::Display for PhaseEnergy {
    fn fmt(&self, fmt: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let header = vec![
            "benchmark".to_string(),
            "phase".to_string(),
            "n".to_string(),
            "sim s".to_string(),
            "energy kJ".to_string(),
            "share %".to_string(),
        ];
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.benchmark.clone(),
                    r.phase.clone(),
                    r.count.to_string(),
                    f(r.sim_s, 0),
                    f(r.energy_j / 1e3, 1),
                    f(100.0 * r.share, 1),
                ]
            })
            .collect();
        write!(
            fmt,
            "{}",
            render_table(
                "Per-phase energy to solution (1 node, single execution)",
                &header,
                &rows
            )
        )
    }
}

impl PhaseEnergy {
    /// Machine-readable export.
    #[must_use]
    pub fn csv(&self) -> String {
        let mut out = String::from("benchmark,phase,count,sim_s,energy_j,share\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{:.3},{:.3},{:.4}\n",
                r.benchmark, r.phase, r.count, r.sim_s, r.energy_j, r.share
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_yields_one_paired_sample_per_repeat() {
        let bench = crate::benchmarks::b_hr105_hse();
        let ctx = StudyContext {
            repeats: 2,
            ..StudyContext::paper()
        };
        let (m, base) = capture(&bench, &baseline_cfg(), &ctx);
        assert!(m.runtime_s > 0.0);
        assert_eq!(base.samples.len(), 2, "one sample per protocol repeat");
        let rep = base.aggregate.span(SAMPLE_SPAN).expect("repeat span aggregated");
        assert_eq!(rep.count, 2);
        for s in &base.samples {
            assert!(s.span("phase.scf_iter").is_some(), "repeat subtree has phases");
            assert!(s.counters.is_empty(), "subtree samples carry no counters");
        }
        assert!(
            base.aggregate.counters.contains_key("job.ops.gpu"),
            "whole-run aggregate keeps session counters: {:?}",
            base.aggregate.counters.keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn capture_is_deterministic_where_the_sim_is() {
        let bench = crate::benchmarks::b_hr105_hse();
        let ctx = StudyContext {
            repeats: 2,
            ..StudyContext::paper()
        };
        let (_, a) = capture(&bench, &baseline_cfg(), &ctx);
        let (_, b) = capture(&bench, &baseline_cfg(), &ctx);
        for (sa, sb) in a.samples.iter().zip(&b.samples) {
            for (xa, xb) in sa.spans.iter().zip(&sb.spans) {
                assert_eq!(xa.name, xb.name);
                assert_eq!(xa.count, xb.count);
                assert!((xa.sim_s - xb.sim_s).abs() < 1e-12, "{}", xa.name);
                assert!((xa.energy_j - xb.energy_j).abs() < 1e-9, "{}", xa.name);
            }
        }
    }

    #[test]
    fn phase_energy_covers_the_suite_and_shares_sum_to_one() {
        let table = phase_energy(&StudyContext::quick());
        let names: Vec<String> = suite().iter().map(|b| b.name().to_string()).collect();
        for n in &names {
            let rows: Vec<_> = table.rows.iter().filter(|r| &r.benchmark == n).collect();
            assert!(rows.len() >= 2, "{n}: expected init + at least one work phase");
            let share: f64 = rows.iter().map(|r| r.share).sum();
            assert!((share - 1.0).abs() < 1e-9, "{n}: shares sum to {share}");
            assert!(rows.iter().all(|r| r.energy_j > 0.0 && r.sim_s > 0.0));
        }
        // The headline claim of the table: SCF/RPA work, not init,
        // dominates energy to solution everywhere.
        for n in &names {
            let init: f64 = table
                .rows
                .iter()
                .filter(|r| &r.benchmark == n && r.phase == "phase.init")
                .map(|r| r.share)
                .sum();
            assert!(init < 0.5, "{n}: init share {init}");
        }
    }
}
