//! MILC-like lattice-QCD workload model.
//!
//! §VI-B of the paper: NERSC's deployment strategy is to extend the VASP
//! power analysis application by application, and "our approach has been
//! recently applied to NERSC's second top application, MILC" (Acun et al.,
//! SC24 Sustainable Computing workshop). This crate implements that next
//! step: a lattice-QCD workload model that lowers to the same per-rank
//! [`vpp_dft::Op`] stream the cluster executor runs, so the *identical*
//! telemetry → KDE → capping pipeline characterises a second application.
//!
//! Power-wise MILC differs from VASP in exactly the ways that matter for
//! power-aware scheduling:
//!
//! * its conjugate-gradient solver is **bandwidth-bound** (staggered-fermion
//!   stencils), so sustained GPU power sits well below TDP and deep caps
//!   cost little — matching the companion paper's finding that MILC is
//!   cap-tolerant;
//! * every CG iteration ends in a tiny global reduction, so communication
//!   latency, not bandwidth, limits scaling;
//! * gauge-force/link updates between trajectories add short compute-heavy
//!   bursts — the power profile is quasi-periodic per trajectory.

pub mod workload;

pub use workload::{MilcWorkload, SolverParams};
