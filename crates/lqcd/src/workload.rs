//! Lowering a MILC-like HMC run to the executor's op stream.

use vpp_cluster::NetworkModel;
use vpp_dft::{CollectiveKind, CostModel, Op, ParallelLayout, ScfPlan};
use vpp_gpu::{Kernel, KernelKind};

/// Multi-mass CG solver configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverParams {
    /// CG iterations per solve (set by the residual target).
    pub cg_iters: usize,
    /// Solves per molecular-dynamics step (multi-mass + accept/reject).
    pub solves_per_step: usize,
}

impl SolverParams {
    /// Production-like defaults.
    #[must_use]
    pub fn production() -> Self {
        Self {
            cg_iters: 1200,
            solves_per_step: 2,
        }
    }
}

/// One MILC-style HMC workload: a 4-D staggered-fermion lattice evolved
/// for a number of trajectories.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MilcWorkload {
    /// Lattice extents `[nx, ny, nz, nt]`.
    pub lattice: [usize; 4],
    /// HMC trajectories.
    pub trajectories: usize,
    /// Molecular-dynamics steps per trajectory.
    pub md_steps: usize,
    pub solver: SolverParams,
}

/// HISQ-style staggered dslash cost, flops per site per CG iteration.
const DSLASH_FLOPS_PER_SITE: f64 = 1146.0;
/// Gauge force + link update cost, flops per site per MD step.
const FORCE_FLOPS_PER_SITE: f64 = 9500.0;
/// CG iterations aggregated per emitted kernel block (keeps op counts
/// manageable; the per-iteration reductions are accounted exactly below).
const ITERS_PER_CHUNK: usize = 100;

impl MilcWorkload {
    /// A medium production lattice (64³×96, the scale MILC runs at NERSC).
    #[must_use]
    pub fn production(trajectories: usize) -> Self {
        Self {
            lattice: [64, 64, 64, 96],
            trajectories,
            md_steps: 20,
            solver: SolverParams::production(),
        }
    }

    /// Total lattice sites.
    #[must_use]
    pub fn sites(&self) -> usize {
        self.lattice.iter().product()
    }

    /// Lower the run for a node layout. `network` is used to account the
    /// per-CG-iteration global reductions (latency-bound) exactly: each
    /// chunk carries its accumulated reduction time as an SM-light comm
    /// kernel, plus one true synchronising collective.
    ///
    /// # Panics
    /// If the lattice is empty or has fewer sites than ranks.
    #[must_use]
    pub fn build_plan(
        &self,
        layout: &ParallelLayout,
        network: &NetworkModel,
        cm: &CostModel,
    ) -> ScfPlan {
        let ranks = layout.ranks();
        assert!(self.sites() > 0, "empty lattice");
        assert!(
            self.sites() >= ranks,
            "lattice smaller than the rank count"
        );
        let sites_per_rank = self.sites() as f64 / ranks as f64;

        // One CG chunk: dslash sweeps + accumulated reductions.
        let t_dslash_chunk =
            ITERS_PER_CHUNK as f64 * DSLASH_FLOPS_PER_SITE * sites_per_rank / cm.mem_flops;
        // Halo exchange per iteration (surface/volume) rides on the dot
        // products; both are charged through the reduction term.
        let t_reduce_one = network.collective_time(
            CollectiveKind::AllReduce,
            16.0,
            layout.nodes,
            layout.gpus_per_node,
        );
        let t_reduce_chunk = (ITERS_PER_CHUNK.saturating_sub(1)) as f64 * t_reduce_one;
        let dslash_width = sites_per_rank * 4.0;

        let chunks_per_solve = self.solver.cg_iters.div_ceil(ITERS_PER_CHUNK);
        let t_force =
            FORCE_FLOPS_PER_SITE * sites_per_rank / cm.gemm_flops;

        let mut ops = Vec::new();
        for _traj in 0..self.trajectories {
            for _step in 0..self.md_steps {
                for _solve in 0..self.solver.solves_per_step {
                    for _chunk in 0..chunks_per_solve {
                        ops.push(Op::Gpu(Kernel::with_duty(
                            KernelKind::MemBound,
                            dslash_width,
                            t_dslash_chunk,
                            cm.duty(t_dslash_chunk / ITERS_PER_CHUNK as f64),
                        )));
                        if t_reduce_chunk > 0.0 {
                            ops.push(Op::Gpu(Kernel::new(
                                KernelKind::NcclComm,
                                16.0,
                                t_reduce_chunk,
                            )));
                        }
                        // True synchronisation point once per chunk.
                        ops.push(Op::Collective {
                            bytes: 16.0,
                            kind: CollectiveKind::AllReduce,
                        });
                    }
                }
                // Gauge force + link update: the compute-heavy burst.
                ops.push(Op::Gpu(Kernel::with_duty(
                    KernelKind::Gemm,
                    dslash_width * 2.0,
                    t_force,
                    cm.duty(t_force / 4.0),
                )));
            }
            // Accept/reject + measurement I/O on the host.
            ops.push(Op::Host {
                duration_s: 0.8,
                cpu_active: 0.30,
                mem_active: 0.35,
            });
        }

        ScfPlan {
            name: format!(
                "milc_{}x{}x{}x{}",
                self.lattice[0], self.lattice[1], self.lattice[2], self.lattice[3]
            ),
            ops,
            iterations: self.trajectories,
            // MILC trajectories don't map onto the VASP phase vocabulary;
            // the executor emits no phase spans for an empty table.
            phases: vec![],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpp_cluster::{execute, JobSpec};
    use vpp_stats::high_power_mode;
    use vpp_telemetry::Sampler;

    fn small() -> MilcWorkload {
        MilcWorkload {
            lattice: [32, 32, 32, 48],
            trajectories: 2,
            md_steps: 6,
            solver: SolverParams {
                cg_iters: 400,
                solves_per_step: 2,
            },
        }
    }

    fn run(w: &MilcWorkload, nodes: usize, cap: Option<f64>) -> vpp_cluster::JobResult {
        let layout = ParallelLayout::nodes(nodes);
        let net = NetworkModel::perlmutter();
        let plan = w.build_plan(&layout, &net, &CostModel::calibrated());
        let mut spec = JobSpec::new(nodes);
        spec.gpu_power_cap_w = cap;
        spec.init_host_s = 2.0;
        execute(&plan, &spec, &net)
    }

    #[test]
    fn milc_node_power_is_mid_range_and_bandwidth_like() {
        let res = run(&small(), 1, None);
        let series = Sampler::ideal(1.0).sample(&res.node_traces[0].node);
        let mode = high_power_mode(series.values()).x;
        // Bandwidth-bound: well above idle, well below VASP's HSE levels.
        assert!((750.0..1500.0).contains(&mode), "MILC node mode {mode}");
    }

    #[test]
    fn milc_is_cap_tolerant_even_at_the_floor() {
        // The companion study's finding (Acun et al.): MILC tolerates deep
        // caps. Memory-bound dslash barely follows the graphics clock.
        let w = small();
        let base = run(&w, 1, None).runtime_s;
        let capped = run(&w, 1, Some(100.0)).runtime_s;
        let loss = capped / base - 1.0;
        assert!(loss < 0.12, "100 W cap should cost <12%: {loss}");
        let at200 = run(&w, 1, Some(200.0)).runtime_s;
        assert!(at200 / base - 1.0 < 0.02, "200 W is free for MILC");
    }

    #[test]
    fn milc_scaling_is_latency_limited() {
        // A production-scale lattice still scales, but the per-iteration
        // reductions clearly cost; the small test lattice collapses.
        let big = MilcWorkload {
            lattice: [48, 48, 48, 64],
            ..small()
        };
        let t1 = run(&big, 1, None).runtime_s;
        let t4 = run(&big, 4, None).runtime_s;
        let pe = vpp_stats::parallel_efficiency(t1, 4.0, t4);
        assert!(pe > 0.30, "still scales somewhat: {pe}");
        assert!(pe < 0.90, "latency-bound reductions must show: {pe}");

        let t4_small = run(&small(), 4, None).runtime_s;
        let pe_small =
            vpp_stats::parallel_efficiency(run(&small(), 1, None).runtime_s, 4.0, t4_small);
        assert!(pe_small < pe, "small lattices scale worse: {pe_small} vs {pe}");
    }

    #[test]
    fn trajectory_structure_shows_in_the_plan() {
        let w = small();
        let plan = w.build_plan(
            &ParallelLayout::nodes(1),
            &NetworkModel::perlmutter(),
            &CostModel::calibrated(),
        );
        let hosts = plan
            .ops
            .iter()
            .filter(|op| matches!(op, Op::Host { .. }))
            .count();
        assert_eq!(hosts, w.trajectories, "one host stage per trajectory");
        let forces = plan
            .ops
            .iter()
            .filter(|op| matches!(op, Op::Gpu(k) if k.kind == KernelKind::Gemm))
            .count();
        assert_eq!(forces, w.trajectories * w.md_steps);
    }

    #[test]
    fn bigger_lattices_run_longer_and_hotter() {
        let small_res = run(&small(), 1, None);
        let big = MilcWorkload {
            lattice: [48, 48, 48, 64],
            ..small()
        };
        let big_res = run(&big, 1, None);
        assert!(big_res.runtime_s > small_res.runtime_s);
        let mode = |r: &vpp_cluster::JobResult| {
            high_power_mode(Sampler::ideal(1.0).sample(&r.node_traces[0].node).values()).x
        };
        assert!(mode(&big_res) >= mode(&small_res) - 20.0);
    }

    #[test]
    #[should_panic(expected = "lattice smaller")]
    fn lattice_must_cover_ranks() {
        let w = MilcWorkload {
            lattice: [1, 1, 1, 2],
            ..small()
        };
        let _ = w.build_plan(
            &ParallelLayout::nodes(1),
            &NetworkModel::perlmutter(),
            &CostModel::calibrated(),
        );
    }
}
