//! Equivalence of the binned KDE fast path against the exact evaluation.
//!
//! [`Kde::grid`] (linear binning + truncated-kernel convolution) must track
//! [`Kde::grid_exact`] (one exact density query per grid point) to within
//! the binning error bound: the sup-norm difference is O((step/h)²) of the
//! peak density, and these tests hold it under 1% across random mixtures,
//! grid sizes and bandwidth rules. The derived quantities the paper
//! actually reports (mode locations, FWHM) must agree far tighter, since
//! they only depend on the density's shape near its peaks.

use vpp_stats::kde::{Bandwidth, Kde};
use vpp_stats::DensityProfile;
use vpp_substrate::prop::{usize_in, vec_f64};
use vpp_substrate::properties;

/// A random 1–3 component mixture with cluster scales like the paper's
/// power data (hundreds of watts, narrow high-power mode).
fn mixture(rng: &mut vpp_sim::Rng) -> Vec<f64> {
    let k = usize_in(rng, 1, 4);
    let mut data = Vec::new();
    for _ in 0..k {
        let mu = rng.uniform(100.0, 2000.0);
        let sigma = rng.uniform(5.0, 80.0);
        let n = usize_in(rng, 50, 400);
        data.extend((0..n).map(|_| rng.normal(mu, sigma)));
    }
    data
}

fn sup_error_vs_peak(kde: &Kde, n: usize) -> (f64, f64) {
    let (xs_b, ys_b) = kde.grid(n);
    let (xs_e, ys_e) = kde.grid_exact(n);
    assert_eq!(xs_b, xs_e, "binned and exact grids must share the axis");
    let peak = ys_e.iter().copied().fold(0.0f64, f64::max);
    let worst = ys_b
        .iter()
        .zip(&ys_e)
        .map(|(b, e)| (b - e).abs())
        .fold(0.0f64, f64::max);
    (worst, peak)
}

properties! {
    fn binned_grid_matches_exact_on_random_mixtures(rng) {
        let data = mixture(rng);
        let kde = Kde::fit(&data, Bandwidth::Silverman);
        let n = usize_in(rng, 64, 2048);
        let (worst, peak) = sup_error_vs_peak(&kde, n);
        // Linear binning's sup error is O((step/h)²) of the peak; on grids
        // fine enough to resolve the bandwidth (step ≤ h) it stays below
        // 1%, and on deliberately coarse random grids it grows with the
        // square of the ratio.
        let (lo, hi) = (kde.grid(n).0[0], kde.grid(n).0[n - 1]);
        let step = (hi - lo) / (n - 1) as f64;
        let ratio = step / kde.bandwidth();
        let rel_tol = 0.01f64.max(0.5 * ratio * ratio);
        assert!(
            worst <= rel_tol * peak,
            "n={n} step/h={ratio:.2}: sup error {worst:.3e} vs peak {peak:.3e}"
        );
    }

    fn binned_grid_matches_exact_for_scott_and_fixed_bandwidths(rng) {
        let data = mixture(rng);
        let scale = data.iter().fold(0.0f64, |a, &x| a.max(x.abs()));
        for bw in [Bandwidth::Scott, Bandwidth::Fixed(0.02 * scale)] {
            let kde = Kde::fit(&data, bw);
            let (worst, peak) = sup_error_vs_peak(&kde, 512);
            assert!(
                worst <= 0.01 * peak,
                "{bw:?}: sup error {worst:.3e} vs peak {peak:.3e}"
            );
        }
    }

    fn binned_grid_matches_exact_on_uniform_noise(rng) {
        // No cluster structure at all — the flattest case for the binner.
        let data = vec_f64(rng, 0.0, 2500.0, 30, 500);
        let kde = Kde::fit(&data, Bandwidth::Silverman);
        let (worst, peak) = sup_error_vs_peak(&kde, 512);
        assert!(worst <= 0.01 * peak, "sup error {worst:.3e} vs peak {peak:.3e}");
    }

    fn profile_mode_agrees_with_exact_argmax(rng) {
        // The high-power mode read from the binned profile must sit on the
        // same grid point as the argmax of the exact evaluation (or an
        // equal-density neighbour).
        let data = mixture(rng);
        let profile = DensityProfile::with_grid(&data, 512);
        let kde = Kde::fit(&data, Bandwidth::Silverman);
        let (xs, ys) = kde.grid_exact(512);
        let mode = profile.high_power_mode();
        let step = xs[1] - xs[0];
        let mi = xs
            .iter()
            .position(|&x| (x - mode.x).abs() < 0.5 * step)
            .expect("mode must lie on the shared grid axis");
        let peak = ys.iter().copied().fold(0.0f64, f64::max);
        // The binned mode's density agrees with the exact density there...
        assert!(
            (mode.density - ys[mi]).abs() <= 0.01 * peak,
            "binned mode density {:.3e} vs exact {:.3e} (peak {:.3e})",
            mode.density, ys[mi], peak
        );
        // ...and that point is a genuine local peak of the exact density.
        let lo = ys[mi.saturating_sub(2)];
        let hi = ys[(mi + 2).min(ys.len() - 1)];
        assert!(
            ys[mi] + 0.01 * peak >= lo && ys[mi] + 0.01 * peak >= hi,
            "exact density is not locally peaked at the binned mode"
        );
    }

    fn fwhm_from_binned_profile_matches_exact_density(rng) {
        // FWHM is read off the grid; binning may move each half-maximum
        // crossing by at most ~a grid step plus the density tolerance.
        let data = mixture(rng);
        let profile = DensityProfile::with_grid(&data, 1024);
        let mode = profile.high_power_mode();
        let width = profile.fwhm(mode);
        let (xs, _) = profile.grid();
        let step = xs[1] - xs[0];
        assert!(width.is_finite() && width >= 0.0);
        // A unimodal Gaussian cluster of scale sigma has FWHM ≈ 2.355·sigma;
        // whatever the mixture, the width cannot exceed the grid span.
        let span = xs[xs.len() - 1] - xs[0];
        assert!(width <= span + step, "width {width} vs span {span}");
    }
}

/// Deterministic spot-check mirroring the paper's bimodal power histogram:
/// idle ~560 W, compute ~2240 W (Table I scale). The binned profile and the
/// exact evaluation must find the same two modes.
#[test]
fn paper_scale_bimodal_modes_agree_with_exact() {
    let mut rng = vpp_sim::Rng::new(0x5EED);
    let mut data: Vec<f64> = (0..800).map(|_| rng.normal(2240.0, 45.0)).collect();
    data.extend((0..400).map(|_| rng.normal(560.0, 30.0)));

    let profile = DensityProfile::with_grid(&data, 512);
    let kde = Kde::fit(&data, Bandwidth::Silverman);
    let (xs, ys) = kde.grid_exact(512);

    // Exact argmax = high-power mode location, to within one grid step.
    let exact_peak_x = xs[ys
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .unwrap()
        .0];
    let step = xs[1] - xs[0];
    let mode = profile.high_power_mode();
    assert!(
        (mode.x - exact_peak_x).abs() <= step + 1e-9,
        "binned mode {:.1} W vs exact argmax {exact_peak_x:.1} W",
        mode.x
    );
    assert!(profile.modes().len() >= 2, "both humps detected: {:?}", profile.modes());
}
