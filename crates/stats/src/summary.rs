//! The per-run power summary the experiment harness reports everywhere.

use crate::describe::{max, mean, median, min};
use crate::modes::DensityProfile;

/// Everything the paper quotes about one power timeline (the text boxes of
/// Fig. 3): high power mode + FWHM, mean, median, extremes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerSummary {
    /// High power mode, watts.
    pub high_mode_w: f64,
    /// FWHM of the high power mode, watts.
    pub fwhm_w: f64,
    /// Mean power, watts (the paper's energy proxy).
    pub mean_w: f64,
    /// Median power, watts.
    pub median_w: f64,
    /// Minimum sample, watts.
    pub min_w: f64,
    /// Maximum sample, watts.
    pub max_w: f64,
    /// Sample count the summary is based on.
    pub n_samples: usize,
}

impl PowerSummary {
    /// Summarise a sampled power series.
    ///
    /// # Panics
    /// If `samples` is empty.
    #[must_use]
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "cannot summarise an empty series");
        // One profile serves both the mode and its FWHM (previously two
        // independent KDE fits + grid evaluations).
        let profile = DensityProfile::fit(samples);
        let mode = profile.high_power_mode();
        Self {
            high_mode_w: mode.x,
            fwhm_w: profile.fwhm(mode),
            mean_w: mean(samples),
            median_w: median(samples),
            min_w: min(samples).unwrap(),
            max_w: max(samples).unwrap(),
            n_samples: samples.len(),
        }
    }
}

/// A [`PowerSummary`] computed from quality-screened input, together with
/// the effective coverage of what survived the screen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScreenedSummary {
    /// Summary over the finite samples.
    pub summary: PowerSummary,
    /// Non-finite samples rejected before summarising.
    pub n_rejected: usize,
    /// Fraction of the input that was usable, in `[0, 1]`.
    pub effective_coverage: f64,
}

impl PowerSummary {
    /// Summarise a possibly-dirty series: non-finite samples are dropped
    /// and accounted for instead of panicking. Returns `None` when no
    /// finite samples remain (including empty input).
    #[must_use]
    pub fn from_screened(samples: &[f64]) -> Option<ScreenedSummary> {
        let finite: Vec<f64> = samples.iter().copied().filter(|x| x.is_finite()).collect();
        if finite.is_empty() {
            return None;
        }
        let n_rejected = samples.len() - finite.len();
        Some(ScreenedSummary {
            summary: Self::from_samples(&finite),
            n_rejected,
            effective_coverage: finite.len() as f64 / samples.len() as f64,
        })
    }
}

impl std::fmt::Display for PowerSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mode {:.0} W (FWHM {:.0}), mean {:.0}, median {:.0}, range [{:.0}, {:.0}] over {} samples",
            self.high_mode_w,
            self.fwhm_w,
            self.mean_w,
            self.median_w,
            self.min_w,
            self.max_w,
            self.n_samples
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_bimodal_series() {
        let mut data: Vec<f64> = (0..400).map(|i| 150.0 + (i % 20) as f64).collect();
        data.extend((0..200).map(|i| 350.0 + (i % 20) as f64));
        let s = PowerSummary::from_samples(&data);
        assert!(s.high_mode_w > 330.0, "{s:?}");
        assert!(s.median_w < s.high_mode_w, "median sits in the low mode");
        assert_eq!(s.min_w, 150.0);
        assert_eq!(s.max_w, 369.0);
        assert_eq!(s.n_samples, 600);
        assert!(s.fwhm_w > 0.0);
    }

    #[test]
    fn display_is_compact_single_line() {
        let s = PowerSummary::from_samples(&[100.0, 101.0, 102.0]);
        let text = s.to_string();
        assert!(text.contains("mode"));
        assert!(!text.contains('\n'));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_series_panics() {
        let _ = PowerSummary::from_samples(&[]);
    }

    #[test]
    fn screened_summary_accounts_for_rejects() {
        let mut data: Vec<f64> = (0..100).map(|i| 200.0 + (i % 10) as f64).collect();
        data.push(f64::NAN);
        data.push(f64::INFINITY);
        let s = PowerSummary::from_screened(&data).unwrap();
        assert_eq!(s.n_rejected, 2);
        assert!((s.effective_coverage - 100.0 / 102.0).abs() < 1e-12);
        assert_eq!(s.summary.n_samples, 100);
        assert!(s.summary.high_mode_w.is_finite());
    }

    #[test]
    fn screened_summary_of_garbage_is_none() {
        assert!(PowerSummary::from_screened(&[f64::NAN]).is_none());
        assert!(PowerSummary::from_screened(&[]).is_none());
    }

    #[test]
    fn screened_summary_of_clean_input_matches_from_samples() {
        let data: Vec<f64> = (0..50).map(|i| 300.0 + (i % 7) as f64).collect();
        let s = PowerSummary::from_screened(&data).unwrap();
        assert_eq!(s.n_rejected, 0);
        assert_eq!(s.effective_coverage, 1.0);
        assert_eq!(s.summary, PowerSummary::from_samples(&data));
    }
}
