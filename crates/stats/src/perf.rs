//! Speedup and parallel efficiency (paper §III-D, Fig. 4).

/// Speedup `S = T(ref) / T(n)` of a run relative to a reference runtime.
///
/// # Panics
/// If either runtime is non-positive.
#[must_use]
pub fn speedup(t_ref_s: f64, t_n_s: f64) -> f64 {
    assert!(t_ref_s > 0.0 && t_n_s > 0.0, "runtimes must be positive");
    t_ref_s / t_n_s
}

/// Parallel efficiency as the paper defines it: `S / N` where `S` is the
/// speedup achieved using `N` times the reference resources.
///
/// # Panics
/// If `n_ratio` is non-positive or runtimes are non-positive.
#[must_use]
pub fn parallel_efficiency(t_ref_s: f64, n_ratio: f64, t_n_s: f64) -> f64 {
    assert!(n_ratio > 0.0, "resource ratio must be positive");
    speedup(t_ref_s, t_n_s) / n_ratio
}

/// The paper's recommended minimum parallel efficiency for production runs.
pub const RECOMMENDED_MIN_EFFICIENCY: f64 = 0.70;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_scaling_is_unit_efficiency() {
        assert!((parallel_efficiency(100.0, 4.0, 25.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn serial_fraction_lowers_efficiency() {
        // Amdahl: 80 % parallel on 4× resources → T = 20 + 80/4 = 40.
        let eff = parallel_efficiency(100.0, 4.0, 40.0);
        assert!((eff - 0.625).abs() < 1e-12);
    }

    #[test]
    fn one_node_is_trivially_efficient() {
        assert_eq!(parallel_efficiency(100.0, 1.0, 100.0), 1.0);
    }

    #[test]
    fn superlinear_is_representable() {
        // Cache effects can make efficiency exceed 1; don't clamp.
        assert!(parallel_efficiency(100.0, 2.0, 45.0) > 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_runtime_panics() {
        let _ = speedup(0.0, 1.0);
    }
}
