//! Gaussian kernel density estimation.
//!
//! Point queries ([`Kde::density`]) are exact O(n) sums. Grid evaluation
//! ([`Kde::grid`]) — the hot path behind mode detection, FWHM, violin
//! plots and the bootstrap — uses **linear binning**: each sample's unit
//! mass is split between its two neighbouring grid points, and the binned
//! mass is convolved with a truncated Gaussian kernel. That turns the
//! O(n·m) double loop of the naive evaluation (kept as
//! [`Kde::grid_exact`]) into O(n + m·k), where k is the kernel half-width
//! in grid steps. The kernel is cut off at 8 bandwidths, so the
//! truncation error is below 1e-14 of the peak; the binning error is
//! O((step/h)²) and bounded by the equivalence tests in
//! `crates/stats/tests/equivalence.rs`.

/// Bandwidth selection rules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Bandwidth {
    /// Silverman's rule of thumb: `0.9 · min(σ, IQR/1.34) · n^(-1/5)`.
    Silverman,
    /// Scott's rule: `1.06 · σ · n^(-1/5)`.
    Scott,
    /// A fixed bandwidth in data units.
    Fixed(f64),
}

/// A fitted Gaussian KDE.
#[derive(Debug, Clone, PartialEq)]
pub struct Kde {
    data: Vec<f64>,
    bandwidth: f64,
}

const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;

impl Kde {
    /// Fit a KDE to `data` with the chosen bandwidth rule.
    ///
    /// # Panics
    /// If `data` is empty, contains non-finite values, or a fixed bandwidth
    /// is non-positive.
    #[must_use]
    pub fn fit(data: &[f64], bw: Bandwidth) -> Self {
        assert!(!data.is_empty(), "cannot fit a KDE to no data");
        assert!(
            data.iter().all(|x| x.is_finite()),
            "non-finite value in KDE input"
        );
        let bandwidth = match bw {
            Bandwidth::Fixed(h) => {
                assert!(h > 0.0 && h.is_finite(), "bad fixed bandwidth {h}");
                h
            }
            Bandwidth::Silverman => silverman(data),
            Bandwidth::Scott => scott(data),
        };
        Self {
            data: data.to_vec(),
            bandwidth,
        }
    }

    /// Fit a KDE to quality-screened input: non-finite values are dropped
    /// (and counted) instead of panicking — the entry point for telemetry
    /// that has passed, or bypassed, the quarantine layer. Returns the fit
    /// plus the number of rejected samples, or `None` when no finite
    /// samples remain.
    #[must_use]
    pub fn fit_screened(data: &[f64], bw: Bandwidth) -> Option<(Self, usize)> {
        let finite: Vec<f64> = data.iter().copied().filter(|x| x.is_finite()).collect();
        let rejected = data.len() - finite.len();
        if finite.is_empty() {
            return None;
        }
        Some((Self::fit(&finite, bw), rejected))
    }

    /// The bandwidth in use.
    #[must_use]
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Density estimate at `x`.
    #[must_use]
    pub fn density(&self, x: f64) -> f64 {
        let h = self.bandwidth;
        let inv_h = 1.0 / h;
        let scale = INV_SQRT_2PI * inv_h / self.data.len() as f64;
        self.data
            .iter()
            .map(|&xi| {
                let z = (x - xi) * inv_h;
                (-0.5 * z * z).exp()
            })
            .sum::<f64>()
            * scale
    }

    /// Evaluate on a regular grid of `n` points spanning
    /// `[min - 3h, max + 3h]`. Returns `(xs, densities)`.
    ///
    /// Linear binning + truncated-kernel convolution: O(samples + n·k)
    /// with k the kernel half-width in grid steps, versus the O(samples·n)
    /// of [`grid_exact`](Self::grid_exact).
    ///
    /// # Panics
    /// If `n < 2`.
    #[must_use]
    pub fn grid(&self, n: usize) -> (Vec<f64>, Vec<f64>) {
        assert!(n >= 2, "grid needs at least two points");
        let (lo, step, xs) = self.grid_axis(n);

        // 1. Bin: split each sample's unit mass linearly between its two
        //    neighbouring grid points (first-order binning, Wand 1994).
        let inv_step = 1.0 / step;
        let mut mass = vec![0.0f64; n];
        for &x in &self.data {
            let pos = (x - lo) * inv_step;
            let i0 = (pos.floor() as usize).min(n - 2);
            let frac = (pos - i0 as f64).clamp(0.0, 1.0);
            mass[i0] += 1.0 - frac;
            mass[i0 + 1] += frac;
        }

        // 2. Truncated Gaussian kernel on grid offsets. Cutting at 8h puts
        //    the dropped tail below 1e-14 of the peak.
        let h = self.bandwidth;
        let k = ((8.0 * h * inv_step).ceil() as usize).min(n - 1);
        let kernel: Vec<f64> = (0..=k)
            .map(|w| {
                let z = w as f64 * step / h;
                (-0.5 * z * z).exp()
            })
            .collect();

        // 3. Convolve, scattering from occupied bins only.
        let mut ys = vec![0.0f64; n];
        for (b, &m) in mass.iter().enumerate() {
            if m == 0.0 {
                continue;
            }
            let lo_j = b.saturating_sub(k);
            let hi_j = (b + k).min(n - 1);
            for j in lo_j..=hi_j {
                ys[j] += m * kernel[b.abs_diff(j)];
            }
        }
        let scale = INV_SQRT_2PI / (self.data.len() as f64 * h);
        for y in &mut ys {
            *y *= scale;
        }
        (xs, ys)
    }

    /// The superseded grid evaluation: one exact [`density`](Self::density)
    /// query per grid point, O(samples·n). Kept as the oracle for the
    /// binned path's equivalence tests and benchmarks.
    ///
    /// # Panics
    /// If `n < 2`.
    #[must_use]
    pub fn grid_exact(&self, n: usize) -> (Vec<f64>, Vec<f64>) {
        assert!(n >= 2, "grid needs at least two points");
        let (_, _, xs) = self.grid_axis(n);
        let ys: Vec<f64> = xs.iter().map(|&x| self.density(x)).collect();
        (xs, ys)
    }

    /// Shared grid geometry: `(lo, step, xs)` for an `n`-point grid.
    fn grid_axis(&self, n: usize) -> (f64, f64, Vec<f64>) {
        let lo = self.data.iter().copied().fold(f64::INFINITY, f64::min) - 3.0 * self.bandwidth;
        let hi =
            self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max) + 3.0 * self.bandwidth;
        let step = (hi - lo) / (n - 1) as f64;
        let xs: Vec<f64> = (0..n).map(|i| lo + i as f64 * step).collect();
        (lo, step, xs)
    }
}

fn std_dev(data: &[f64]) -> f64 {
    let n = data.len() as f64;
    let mean = data.iter().sum::<f64>() / n;
    let var = data.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    var.sqrt()
}

fn iqr(data: &[f64]) -> f64 {
    let mut sorted = data.to_vec();
    sorted.sort_by(f64::total_cmp);
    let q = |p: f64| {
        let idx = p * (sorted.len() - 1) as f64;
        let lo = idx.floor() as usize;
        let hi = idx.ceil() as usize;
        let frac = idx - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    };
    q(0.75) - q(0.25)
}

/// Minimum bandwidth as a fraction of |data| scale, to keep degenerate
/// (constant) inputs well-defined.
const MIN_BW: f64 = 1e-6;

fn silverman(data: &[f64]) -> f64 {
    let n = data.len() as f64;
    let sigma = std_dev(data);
    let spread = if iqr(data) > 0.0 {
        sigma.min(iqr(data) / 1.34)
    } else {
        sigma
    };
    let h = 0.9 * spread * n.powf(-0.2);
    let scale = data.iter().fold(0.0f64, |a, &x| a.max(x.abs())).max(1.0);
    h.max(MIN_BW * scale)
}

fn scott(data: &[f64]) -> f64 {
    let n = data.len() as f64;
    let h = 1.06 * std_dev(data) * n.powf(-0.2);
    let scale = data.iter().fold(0.0f64, |a, &x| a.max(x.abs())).max(1.0);
    h.max(MIN_BW * scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn normalish(n: usize, mu: f64, sigma: f64) -> Vec<f64> {
        // Deterministic pseudo-normal via sum of uniforms (Irwin-Hall).
        (0..n)
            .map(|i| {
                let u: f64 = (0..12)
                    .map(|k| ((i * 12 + k) as f64 * 0.618_033_988_75).fract())
                    .sum();
                mu + sigma * (u - 6.0)
            })
            .collect()
    }

    #[test]
    fn density_integrates_to_one() {
        let data = normalish(500, 100.0, 10.0);
        let kde = Kde::fit(&data, Bandwidth::Silverman);
        let (xs, ys) = kde.grid(2048);
        let step = xs[1] - xs[0];
        let integral: f64 = ys.iter().sum::<f64>() * step;
        assert!((integral - 1.0).abs() < 0.01, "integral = {integral}");
    }

    #[test]
    fn density_peaks_near_the_mean() {
        let data = normalish(1000, 50.0, 5.0);
        let kde = Kde::fit(&data, Bandwidth::Silverman);
        let (xs, ys) = kde.grid(512);
        let peak_x = xs[ys
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0];
        assert!((peak_x - 50.0).abs() < 2.0, "peak at {peak_x}");
    }

    #[test]
    fn constant_data_is_well_defined() {
        let data = vec![200.0; 100];
        let kde = Kde::fit(&data, Bandwidth::Silverman);
        assert!(kde.bandwidth() > 0.0);
        assert!(kde.density(200.0) > 0.0);
        let (_, ys) = kde.grid(64);
        assert!(ys.iter().all(|y| y.is_finite()));
    }

    #[test]
    fn fixed_bandwidth_is_respected() {
        let data = vec![1.0, 2.0, 3.0];
        let kde = Kde::fit(&data, Bandwidth::Fixed(0.5));
        assert_eq!(kde.bandwidth(), 0.5);
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn empty_data_panics() {
        let _ = Kde::fit(&[], Bandwidth::Silverman);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_data_panics() {
        let _ = Kde::fit(&[1.0, f64::NAN], Bandwidth::Silverman);
    }

    #[test]
    fn fit_screened_drops_and_counts_non_finite() {
        let data = [1.0, f64::NAN, 2.0, f64::INFINITY, 3.0, f64::NEG_INFINITY];
        let (kde, rejected) = Kde::fit_screened(&data, Bandwidth::Silverman).unwrap();
        assert_eq!(rejected, 3);
        assert!(kde.density(2.0).is_finite());
    }

    #[test]
    fn fit_screened_on_all_garbage_is_none() {
        assert!(Kde::fit_screened(&[f64::NAN, f64::INFINITY], Bandwidth::Silverman).is_none());
        assert!(Kde::fit_screened(&[], Bandwidth::Silverman).is_none());
    }

    #[test]
    fn fit_screened_on_clean_data_matches_fit() {
        let data = normalish(200, 10.0, 2.0);
        let (a, rejected) = Kde::fit_screened(&data, Bandwidth::Silverman).unwrap();
        assert_eq!(rejected, 0);
        assert_eq!(a, Kde::fit(&data, Bandwidth::Silverman));
    }

    #[test]
    #[should_panic(expected = "bad fixed bandwidth")]
    fn zero_fixed_bandwidth_panics() {
        let _ = Kde::fit(&[1.0], Bandwidth::Fixed(0.0));
    }

    #[test]
    fn scott_and_silverman_are_close_for_normal_data() {
        let data = normalish(400, 0.0, 1.0);
        let hs = Kde::fit(&data, Bandwidth::Silverman).bandwidth();
        let hc = Kde::fit(&data, Bandwidth::Scott).bandwidth();
        assert!(hs > 0.0 && hc > 0.0);
        assert!((hs / hc - 0.85).abs() < 0.3, "hs={hs}, hc={hc}");
    }

    #[test]
    fn binned_grid_tracks_exact_grid() {
        let mut data = normalish(600, 150.0, 12.0);
        data.extend(normalish(300, 420.0, 6.0));
        let kde = Kde::fit(&data, Bandwidth::Silverman);
        for n in [64, 512, 2048] {
            let (xs_b, ys_b) = kde.grid(n);
            let (xs_e, ys_e) = kde.grid_exact(n);
            assert_eq!(xs_b, xs_e);
            let peak = ys_e.iter().copied().fold(0.0f64, f64::max);
            let worst = ys_b
                .iter()
                .zip(&ys_e)
                .map(|(b, e)| (b - e).abs())
                .fold(0.0f64, f64::max);
            assert!(
                worst <= 0.01 * peak,
                "n={n}: sup error {worst:.3e} vs peak {peak:.3e}"
            );
        }
    }

    #[test]
    fn binned_grid_handles_constant_data() {
        let kde = Kde::fit(&[42.0; 200], Bandwidth::Silverman);
        let (_, ys) = kde.grid(128);
        assert!(ys.iter().all(|y| y.is_finite() && *y >= 0.0));
        assert!(ys.iter().copied().fold(0.0f64, f64::max) > 0.0);
    }

    #[test]
    fn bimodal_data_shows_two_peaks() {
        let mut data = normalish(400, 100.0, 4.0);
        data.extend(normalish(400, 300.0, 4.0));
        let kde = Kde::fit(&data, Bandwidth::Silverman);
        assert!(kde.density(100.0) > 4.0 * kde.density(200.0));
        assert!(kde.density(300.0) > 4.0 * kde.density(200.0));
    }
}
