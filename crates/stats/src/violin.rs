//! Violin-plot summaries (Fig. 9).

use crate::describe::{max, median, min, quantile};
use crate::kde::{Bandwidth, Kde};

/// The numbers behind one violin: quartiles plus a density outline.
#[derive(Debug, Clone, PartialEq)]
pub struct ViolinStats {
    pub min: f64,
    pub q1: f64,
    pub median: f64,
    pub q3: f64,
    pub max: f64,
    /// Density outline: `(power, density)` pairs on a regular grid.
    pub outline: Vec<(f64, f64)>,
}

impl ViolinStats {
    /// Summarise `data` with an `n_outline`-point density outline.
    ///
    /// # Panics
    /// If `data` is empty or `n_outline < 2`.
    #[must_use]
    pub fn from_samples(data: &[f64], n_outline: usize) -> Self {
        assert!(!data.is_empty(), "violin of empty data");
        let kde = Kde::fit(data, Bandwidth::Silverman);
        let (xs, ys) = kde.grid(n_outline);
        Self {
            min: min(data).unwrap(),
            q1: quantile(data, 0.25),
            median: median(data),
            q3: quantile(data, 0.75),
            max: max(data).unwrap(),
            outline: xs.into_iter().zip(ys).collect(),
        }
    }

    /// Interquartile range.
    #[must_use]
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// Number of density modes visible in the outline (multi-modality is
    /// the reason the paper prefers violins over box plots).
    #[must_use]
    pub fn outline_mode_count(&self) -> usize {
        let ys: Vec<f64> = self.outline.iter().map(|&(_, y)| y).collect();
        let peak = ys.iter().copied().fold(0.0f64, f64::max);
        (1..ys.len().saturating_sub(1))
            .filter(|&i| ys[i] > ys[i - 1] && ys[i] >= ys[i + 1] && ys[i] >= 0.05 * peak)
            .count()
            .max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quartiles_are_ordered() {
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let v = ViolinStats::from_samples(&data, 64);
        assert!(v.min <= v.q1 && v.q1 <= v.median);
        assert!(v.median <= v.q3 && v.q3 <= v.max);
        assert!((v.median - 49.5).abs() < 1e-9);
    }

    #[test]
    fn iqr_matches_quantiles() {
        let data: Vec<f64> = (0..101).map(|i| i as f64).collect();
        let v = ViolinStats::from_samples(&data, 32);
        assert!((v.iqr() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn bimodal_outline_shows_two_modes() {
        let mut data: Vec<f64> = (0..300).map(|i| 100.0 + (i % 30) as f64 * 0.3).collect();
        data.extend((0..300).map(|i| 300.0 + (i % 30) as f64 * 0.3));
        let v = ViolinStats::from_samples(&data, 256);
        assert!(v.outline_mode_count() >= 2);
    }

    #[test]
    fn outline_length_matches_request() {
        let data = vec![1.0, 2.0, 3.0];
        let v = ViolinStats::from_samples(&data, 77);
        assert_eq!(v.outline.len(), 77);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_data_panics() {
        let _ = ViolinStats::from_samples(&[], 16);
    }
}
