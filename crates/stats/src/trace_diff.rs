//! Trace-diff regression triage: compare a re-run's flight-recorder
//! aggregates against a stored baseline and name what moved.
//!
//! A bench regression that only reports a top-line median forces a human
//! to bisect; the flight recorder already knows *which phase* got slower
//! and *which counters* changed. This module turns two
//! [`TraceBaseline`]s (stored by `Harness::bench_traced`, re-captured by
//! `vpp trace diff`) into a ranked list of [`DiffRow`]s.
//!
//! # Significance model
//!
//! The simulator is deterministic per seed: a repeat's simulated phase
//! durations (`sim_s`) and attributed energy (`energy_j`) vary only
//! through the protocol's per-repeat fleet sampling, never through host
//! noise. So an unperturbed re-run reproduces the baseline samples
//! *exactly*, and any non-zero paired delta is a real behavioural change:
//!
//! * With ≥ 2 repeats, the per-repeat paired differences feed the
//!   existing percentile bootstrap ([`bootstrap_ci`]); a metric is
//!   significant when its CI excludes zero **and** the relative delta
//!   clears [`DiffConfig::noise_floor`].
//! * With 1 repeat (or a degenerate CI), the exact relative delta alone
//!   is compared against the floor.
//! * Span counts and session counters are integers and compare exactly.
//! * Wall-clock totals (`wall_ns`) are host noise; they are reported as
//!   context rows but can never be significant and never fail a diff.
//! * A per-span tolerance blessed into the baseline (`vpp trace accept
//!   --tolerance phase:pct`, stored in [`TraceBaseline::tolerances`])
//!   replaces the global noise floor for that span's continuous metrics
//!   when it is wider — a persisted allowance for a phase that is
//!   expected to drift. Tolerances never tighten below
//!   [`DiffConfig::noise_floor`] and never apply to exact (count /
//!   counter) comparisons.
//!
//! This is what guarantees the acceptance property: an identical-seed
//! re-run reports no significant deltas, while a single perturbed phase
//! is ranked at the top with its counter deltas alongside.

use crate::bootstrap::{bootstrap_ci, ConfidenceInterval};
use vpp_substrate::bench::TraceBaseline;
use vpp_substrate::trace::TraceAggregate;

/// Knobs for [`diff`].
#[derive(Debug, Clone, Copy)]
pub struct DiffConfig {
    /// Bootstrap resamples for the paired-difference CIs.
    pub resamples: usize,
    /// CI level (e.g. 0.95).
    pub level: f64,
    /// Seed for the deterministic bootstrap resampler.
    pub seed: u64,
    /// Minimum relative change (|new − base| / base) a metric must clear
    /// before it can be significant. Guards against microscopic float
    /// drift being promoted to a finding.
    pub noise_floor: f64,
}

impl Default for DiffConfig {
    fn default() -> Self {
        Self {
            resamples: 2000,
            level: 0.95,
            seed: 0xD1FF,
            noise_floor: 0.01,
        }
    }
}

/// One compared metric of one span name.
#[derive(Debug, Clone)]
pub struct DiffRow {
    /// Span name (`phase.scf_iter`, `job.collective`, …).
    pub span: String,
    /// Which metric: `"sim_s"`, `"energy_j"`, `"count"`, or `"wall_ns"`.
    pub metric: &'static str,
    /// Baseline total.
    pub base: f64,
    /// Re-run total.
    pub current: f64,
    /// `(current − base) / base`; ±∞ when the span (dis)appeared.
    pub rel_delta: f64,
    /// Paired-difference CI over per-repeat samples, when ≥ 2 repeats
    /// were available to bootstrap.
    pub ci: Option<ConfidenceInterval>,
    /// The delta is real (per the significance model) — not necessarily
    /// worse.
    pub significant: bool,
    /// Significant *and* slower/costlier (`current > base`).
    pub regression: bool,
}

/// A session counter whose value changed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterDelta {
    /// Counter name.
    pub name: String,
    /// Baseline value (0 when the counter is new).
    pub base: u64,
    /// Re-run value (0 when the counter disappeared).
    pub current: u64,
}

/// The outcome of one baseline-vs-re-run comparison.
#[derive(Debug, Clone)]
pub struct TraceDiff {
    /// Metric rows, ranked: significant rows first, then by |relative
    /// delta| descending; wall-clock context rows always sort last.
    pub rows: Vec<DiffRow>,
    /// Counters whose values differ (exact integer comparison).
    pub counter_deltas: Vec<CounterDelta>,
    /// Repeats actually paired for the bootstrap.
    pub paired_repeats: usize,
}

impl TraceDiff {
    /// Rows that are significant (real changes, either direction).
    #[must_use]
    pub fn significant(&self) -> Vec<&DiffRow> {
        self.rows.iter().filter(|r| r.significant).collect()
    }

    /// True when any metric significantly got worse — the CI-gate signal.
    #[must_use]
    pub fn has_regressions(&self) -> bool {
        self.rows.iter().any(|r| r.regression)
    }

    /// The top-ranked regression, if any.
    #[must_use]
    pub fn top_regression(&self) -> Option<&DiffRow> {
        self.rows.iter().find(|r| r.regression)
    }
}

fn rel_delta(base: f64, current: f64) -> f64 {
    if base == current {
        0.0
    } else if base == 0.0 {
        f64::INFINITY * (current - base).signum()
    } else {
        (current - base) / base.abs()
    }
}

/// Union of span names across two aggregates, sorted.
fn span_names<'a>(a: &'a TraceAggregate, b: &'a TraceAggregate) -> Vec<&'a str> {
    let mut names: Vec<&str> = a
        .spans
        .iter()
        .chain(b.spans.iter())
        .map(|s| s.name.as_str())
        .collect();
    names.sort_unstable();
    names.dedup();
    names
}

/// Compare a re-run against its stored baseline.
///
/// # Panics
/// If `cfg.resamples == 0` or `cfg.level` is outside `(0, 1)` while
/// a bootstrap is needed (≥ 2 paired repeats with varying deltas).
#[must_use]
pub fn diff(base: &TraceBaseline, current: &TraceBaseline, cfg: &DiffConfig) -> TraceDiff {
    let paired = base.samples.len().min(current.samples.len());
    let mut rows: Vec<DiffRow> = Vec::new();

    for name in span_names(&base.aggregate, &current.aggregate) {
        let b = base.aggregate.span(name);
        let c = current.aggregate.span(name);
        let b_stat = |f: fn(&vpp_substrate::trace::SpanStat) -> f64| b.map_or(0.0, f);
        let c_stat = |f: fn(&vpp_substrate::trace::SpanStat) -> f64| c.map_or(0.0, f);
        // Per-span blessed tolerance widens (never tightens) the floor.
        let floor = base
            .tolerances
            .get(name)
            .copied()
            .unwrap_or(cfg.noise_floor)
            .max(cfg.noise_floor);

        // Deterministic continuous metrics: paired bootstrap over repeats.
        for (metric, get) in [
            ("sim_s", (|s| s.sim_s) as fn(&vpp_substrate::trace::SpanStat) -> f64),
            ("energy_j", |s| s.energy_j),
        ] {
            let (bt, ct) = (b_stat(get), c_stat(get));
            if bt == 0.0 && ct == 0.0 {
                continue; // metric not carried by this span kind
            }
            let deltas: Vec<f64> = (0..paired)
                .map(|i| {
                    let bs = base.samples[i].span(name).map_or(0.0, get);
                    let cs = current.samples[i].span(name).map_or(0.0, get);
                    cs - bs
                })
                .collect();
            let rel = rel_delta(bt, ct);
            // A span that never appears inside a repeat subtree (e.g. the
            // protocol wrapper itself) yields an all-missing delta vector;
            // pairing carries no information there, so fall back to the
            // exact comparison instead of reporting a degenerate [0, 0] CI.
            let sampled = (0..paired).any(|i| {
                base.samples[i].span(name).is_some() || current.samples[i].span(name).is_some()
            });
            let (ci, significant) = if sampled && deltas.len() >= 2 {
                let ci = bootstrap_ci(&deltas, cfg.resamples, cfg.level, cfg.seed, |d| {
                    d.iter().sum::<f64>() / d.len() as f64
                });
                let sig = !ci.contains(0.0) && rel.abs() > floor;
                (Some(ci), sig)
            } else {
                (None, rel.abs() > floor)
            };
            rows.push(DiffRow {
                span: name.to_string(),
                metric,
                base: bt,
                current: ct,
                rel_delta: rel,
                ci,
                significant,
                regression: significant && ct > bt,
            });
        }

        // Span count: exact integer comparison.
        let (bc, cc) = (b.map_or(0, |s| s.count), c.map_or(0, |s| s.count));
        if bc != cc {
            rows.push(DiffRow {
                span: name.to_string(),
                metric: "count",
                base: bc as f64,
                current: cc as f64,
                rel_delta: rel_delta(bc as f64, cc as f64),
                ci: None,
                significant: true,
                regression: cc > bc,
            });
        }

        // Wall clock: context only — host noise never drives the verdict.
        let (bw, cw) = (b_stat(|s| s.wall_ns as f64), c_stat(|s| s.wall_ns as f64));
        if bw > 0.0 || cw > 0.0 {
            rows.push(DiffRow {
                span: name.to_string(),
                metric: "wall_ns",
                base: bw,
                current: cw,
                rel_delta: rel_delta(bw, cw),
                ci: None,
                significant: false,
                regression: false,
            });
        }
    }

    // Rank: significant first, largest |relative move| first; wall-clock
    // context sinks to the bottom regardless of its delta.
    rows.sort_by(|a, b| {
        let class = |r: &DiffRow| -> u8 {
            if r.significant {
                0
            } else if r.metric != "wall_ns" {
                1
            } else {
                2
            }
        };
        class(a).cmp(&class(b)).then(
            b.rel_delta
                .abs()
                .total_cmp(&a.rel_delta.abs()),
        )
    });

    // Counters: exact comparison over the union of names.
    let mut counter_deltas: Vec<CounterDelta> = Vec::new();
    let mut names: Vec<&String> = base
        .aggregate
        .counters
        .keys()
        .chain(current.aggregate.counters.keys())
        .collect();
    names.sort_unstable();
    names.dedup();
    for name in names {
        let bv = base.aggregate.counters.get(name).copied().unwrap_or(0);
        let cv = current.aggregate.counters.get(name).copied().unwrap_or(0);
        if bv != cv {
            counter_deltas.push(CounterDelta {
                name: name.clone(),
                base: bv,
                current: cv,
            });
        }
    }

    TraceDiff {
        rows,
        counter_deltas,
        paired_repeats: paired,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpp_substrate::trace::{SpanStat, TraceAggregate};

    fn agg(entries: &[(&str, u64, f64, f64)]) -> TraceAggregate {
        let mut spans: Vec<SpanStat> = entries
            .iter()
            .map(|(name, count, sim_s, energy_j)| SpanStat {
                name: (*name).to_string(),
                count: *count,
                wall_ns: 1000,
                sim_s: *sim_s,
                energy_j: *energy_j,
            })
            .collect();
        spans.sort_by(|a, b| a.name.cmp(&b.name));
        TraceAggregate {
            spans,
            counters: std::collections::BTreeMap::new(),
        }
    }

    fn baseline(samples: Vec<TraceAggregate>) -> TraceBaseline {
        // The whole-run aggregate is the element-wise sum of the samples.
        let mut total = TraceAggregate::default();
        for s in &samples {
            for st in &s.spans {
                match total.spans.binary_search_by(|t| t.name.cmp(&st.name)) {
                    Ok(i) => {
                        total.spans[i].count += st.count;
                        total.spans[i].wall_ns += st.wall_ns;
                        total.spans[i].sim_s += st.sim_s;
                        total.spans[i].energy_j += st.energy_j;
                    }
                    Err(i) => total.spans.insert(i, st.clone()),
                }
            }
        }
        TraceBaseline {
            aggregate: total,
            samples,
            tolerances: std::collections::BTreeMap::new(),
        }
    }

    fn three_repeats(scale: f64) -> TraceBaseline {
        baseline(
            (0..3)
                .map(|i| {
                    let wiggle = 1.0 + 0.02 * i as f64; // fleet-sampling spread
                    agg(&[
                        ("phase.init", 1, 6.0 * wiggle, 900.0 * wiggle),
                        ("phase.scf_iter", 10, 40.0 * wiggle * scale, 9e4 * wiggle * scale),
                    ])
                })
                .collect(),
        )
    }

    #[test]
    fn identical_runs_report_no_significant_deltas() {
        let b = three_repeats(1.0);
        let d = diff(&b, &b.clone(), &DiffConfig::default());
        assert!(!d.has_regressions());
        assert!(d.significant().is_empty(), "{:?}", d.significant());
        assert_eq!(d.paired_repeats, 3);
        assert!(d.counter_deltas.is_empty());
        // Context rows still present for inspection.
        assert!(d.rows.iter().any(|r| r.metric == "wall_ns"));
    }

    #[test]
    fn perturbed_phase_is_top_ranked() {
        let base = three_repeats(1.0);
        let slow = three_repeats(1.4);
        let d = diff(&base, &slow, &DiffConfig::default());
        assert!(d.has_regressions());
        let top = d.top_regression().unwrap();
        assert_eq!(top.span, "phase.scf_iter");
        assert!(top.rel_delta > 0.35 && top.rel_delta < 0.45, "{top:?}");
        assert!(top.ci.is_some());
        // The untouched phase must not be flagged.
        assert!(d
            .significant()
            .iter()
            .all(|r| r.span == "phase.scf_iter"));
    }

    #[test]
    fn improvements_are_significant_but_not_regressions() {
        let base = three_repeats(1.0);
        let fast = three_repeats(0.7);
        let d = diff(&base, &fast, &DiffConfig::default());
        assert!(!d.has_regressions());
        assert!(!d.significant().is_empty(), "a real speedup is still a delta");
    }

    #[test]
    fn single_repeat_uses_exact_comparison() {
        let base = baseline(vec![agg(&[("phase.scf_iter", 5, 20.0, 4e4)])]);
        let same = diff(&base, &base.clone(), &DiffConfig::default());
        assert!(!same.has_regressions());
        assert!(same.significant().is_empty());

        let slow = baseline(vec![agg(&[("phase.scf_iter", 5, 26.0, 5e4)])]);
        let d = diff(&base, &slow, &DiffConfig::default());
        let top = d.top_regression().unwrap();
        assert_eq!(top.span, "phase.scf_iter");
        assert!(top.ci.is_none(), "one repeat cannot bootstrap");
    }

    #[test]
    fn aggregate_only_spans_fall_back_to_exact_comparison() {
        // The protocol wrapper span never nests inside a repeat subtree,
        // so it appears in the whole-run aggregate only; pairing carries
        // no information and the comparison must degrade to exact.
        let wrapper = |energy_j: f64| SpanStat {
            name: "protocol.measure".to_string(),
            count: 1,
            wall_ns: 5000,
            sim_s: 0.0,
            energy_j,
        };
        let mut base = three_repeats(1.0);
        base.aggregate.spans.insert(0, wrapper(3e5));
        base.aggregate.spans.sort_by(|a, b| a.name.cmp(&b.name));
        let mut cur = three_repeats(1.0);
        cur.aggregate.spans.insert(0, wrapper(4.5e5));
        cur.aggregate.spans.sort_by(|a, b| a.name.cmp(&b.name));

        let d = diff(&base, &cur, &DiffConfig::default());
        let row = d
            .rows
            .iter()
            .find(|r| r.span == "protocol.measure" && r.metric == "energy_j")
            .expect("wrapper row");
        assert!(row.significant && row.regression, "{row:?}");
        assert!(row.ci.is_none(), "no pairing information -> exact compare");

        let same = diff(&base, &base.clone(), &DiffConfig::default());
        assert!(same.significant().is_empty(), "{:?}", same.significant());
    }

    #[test]
    fn count_and_counter_changes_are_exact() {
        let mut base = baseline(vec![agg(&[("phase.scf_iter", 10, 40.0, 9e4)])]);
        base.aggregate.counters.insert("des.scheduled".into(), 100);
        let mut cur = baseline(vec![agg(&[("phase.scf_iter", 12, 40.0, 9e4)])]);
        cur.aggregate.counters.insert("des.scheduled".into(), 120);
        cur.aggregate.counters.insert("job.ops.gpu".into(), 7);
        let d = diff(&base, &cur, &DiffConfig::default());
        let count_row = d
            .rows
            .iter()
            .find(|r| r.metric == "count")
            .expect("count delta row");
        assert!(count_row.significant && count_row.regression);
        assert_eq!(
            d.counter_deltas,
            vec![
                CounterDelta {
                    name: "des.scheduled".into(),
                    base: 100,
                    current: 120
                },
                CounterDelta {
                    name: "job.ops.gpu".into(),
                    base: 0,
                    current: 7
                },
            ]
        );
    }

    #[test]
    fn blessed_tolerance_widens_the_floor_for_that_span_only() {
        let mut base = three_repeats(1.0);
        let slow = three_repeats(1.4); // scf_iter +40%, init untouched
        let d = diff(&base, &slow, &DiffConfig::default());
        assert!(d.has_regressions(), "without a tolerance the move flags");

        // Bless a ±50% allowance on exactly the moved phase: the diff
        // goes clean, because the untouched phase never moved anyway.
        base.tolerances.insert("phase.scf_iter".to_string(), 0.50);
        let d = diff(&base, &slow, &DiffConfig::default());
        assert!(!d.has_regressions(), "{:?}", d.significant());
        assert!(d.significant().is_empty());

        // The allowance is scoped: a different span's regression still
        // flags even while scf_iter is tolerated.
        let mut slow_init = three_repeats(1.4);
        for sample in slow_init
            .samples
            .iter_mut()
            .chain(std::iter::once(&mut slow_init.aggregate))
        {
            for s in &mut sample.spans {
                if s.name == "phase.init" {
                    s.sim_s *= 1.3;
                    s.energy_j *= 1.3;
                }
            }
        }
        let d = diff(&base, &slow_init, &DiffConfig::default());
        let top = d.top_regression().expect("init regression flags");
        assert_eq!(top.span, "phase.init");
        assert!(d.significant().iter().all(|r| r.span == "phase.init"));

        // A tolerance below the global floor never tightens it.
        let mut tight = three_repeats(1.0);
        tight.tolerances.insert("phase.scf_iter".to_string(), 0.0);
        let mut nudged = three_repeats(1.0);
        for sample in nudged
            .samples
            .iter_mut()
            .chain(std::iter::once(&mut nudged.aggregate))
        {
            for s in &mut sample.spans {
                s.sim_s *= 1.0 + 5e-3; // under the 1% global floor
                s.energy_j *= 1.0 + 5e-3;
            }
        }
        let d = diff(&tight, &nudged, &DiffConfig::default());
        assert!(
            d.significant().is_empty(),
            "sub-floor drift must stay quiet: {:?}",
            d.significant()
        );
    }

    #[test]
    fn diff_is_deterministic() {
        let base = three_repeats(1.0);
        let slow = three_repeats(1.2);
        let cfg = DiffConfig::default();
        let a = diff(&base, &slow, &cfg);
        let b = diff(&base, &slow, &cfg);
        assert_eq!(a.rows.len(), b.rows.len());
        for (x, y) in a.rows.iter().zip(&b.rows) {
            assert_eq!(x.span, y.span);
            assert_eq!(x.metric, y.metric);
            assert_eq!(x.significant, y.significant);
            assert_eq!(x.rel_delta.to_bits(), y.rel_delta.to_bits());
            match (&x.ci, &y.ci) {
                (Some(a), Some(b)) => assert_eq!(a, b),
                (None, None) => {}
                _ => panic!("CI presence must match"),
            }
        }
    }

    #[test]
    fn wall_noise_alone_never_flags() {
        let base = three_repeats(1.0);
        let mut noisy = base.clone();
        for s in &mut noisy.aggregate.spans {
            s.wall_ns *= 10; // a busy CI host
        }
        let d = diff(&base, &noisy, &DiffConfig::default());
        assert!(!d.has_regressions());
        assert!(d.significant().is_empty());
    }
}
