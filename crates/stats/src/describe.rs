//! Descriptive statistics over sample slices.

/// Arithmetic mean; 0 for empty input.
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation; 0 for fewer than two samples.
#[must_use]
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Linear-interpolated quantile, `p ∈ [0, 1]`.
///
/// # Panics
/// If `xs` is empty or `p` is outside `[0, 1]`.
#[must_use]
pub fn quantile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&p), "p = {p} outside [0, 1]");
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let idx = p * (sorted.len() - 1) as f64;
    let lo = idx.floor() as usize;
    let hi = idx.ceil() as usize;
    let frac = idx - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Median (50th percentile).
///
/// # Panics
/// If `xs` is empty.
#[must_use]
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Minimum; `None` for empty input.
#[must_use]
pub fn min(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().reduce(f64::min)
}

/// Maximum; `None` for empty input.
#[must_use]
pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().reduce(f64::max)
}

/// Histogram with `bins` equal-width bins over `[lo, hi)`. Returns bin
/// edges (length `bins + 1`) and counts (length `bins`). Out-of-range
/// samples are clamped into the end bins.
///
/// # Panics
/// If `bins == 0` or `hi <= lo`.
#[must_use]
pub fn histogram(xs: &[f64], lo: f64, hi: f64, bins: usize) -> (Vec<f64>, Vec<usize>) {
    assert!(bins > 0, "need at least one bin");
    assert!(hi > lo, "bad range [{lo}, {hi})");
    let width = (hi - lo) / bins as f64;
    let edges: Vec<f64> = (0..=bins).map(|i| lo + i as f64 * width).collect();
    let mut counts = vec![0usize; bins];
    for &x in xs {
        let b = (((x - lo) / width).floor() as isize).clamp(0, bins as isize - 1) as usize;
        counts[b] += 1;
    }
    (edges, counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input_behaviour() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(min(&[]), None);
        assert_eq!(max(&[]), None);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(median(&xs), 2.5);
        assert_eq!(quantile(&xs, 0.25), 1.75);
    }

    #[test]
    fn quantile_handles_unsorted_input() {
        let xs = [9.0, 1.0, 5.0];
        assert_eq!(median(&xs), 5.0);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn quantile_rejects_bad_p() {
        let _ = quantile(&[1.0], 1.5);
    }

    #[test]
    fn histogram_counts_and_clamps() {
        let xs = [-5.0, 0.5, 1.5, 1.6, 2.5, 99.0];
        let (edges, counts) = histogram(&xs, 0.0, 3.0, 3);
        assert_eq!(edges, vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(counts, vec![2, 2, 2]); // -5 clamps low, 99 clamps high
        assert_eq!(counts.iter().sum::<usize>(), xs.len());
    }

    #[test]
    #[should_panic(expected = "bad range")]
    fn histogram_rejects_inverted_range() {
        let _ = histogram(&[1.0], 5.0, 2.0, 4);
    }
}
