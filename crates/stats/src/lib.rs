//! Power statistics — the paper's analysis methodology (§III-B.3).
//!
//! The study characterises a workload's power by the **high power mode**:
//! the mode of the power distribution located at the highest power, found
//! from a Gaussian kernel density estimate of the timeline samples, together
//! with the **full width at half maximum** (FWHM) of that mode. This crate
//! implements:
//!
//! * [`kde`] — Gaussian KDE with Silverman/Scott bandwidths;
//! * [`modes`] — mode detection with prominence filtering, the high power
//!   mode, and FWHM extraction;
//! * [`describe`] — descriptive statistics (quantiles, mean, spread);
//! * [`violin`] — the quartile + density summaries behind Fig. 9;
//! * [`perf`] — speedup / parallel-efficiency helpers (Fig. 4);
//! * [`summary`] — the one-stop [`summary::PowerSummary`] the experiment
//!   harness reports for every run;
//! * [`trace_diff`] — flight-recorder regression triage: paired-bootstrap
//!   comparison of per-phase trace aggregates against a stored baseline.

pub mod bootstrap;
pub mod describe;
pub mod energy_metrics;
pub mod kde;
pub mod modes;
pub mod perf;
pub mod periodicity;
pub mod phases;
pub mod summary;
pub mod trace_diff;
pub mod violin;

pub use bootstrap::{bootstrap_ci, high_power_mode_ci, ConfidenceInterval};
pub use energy_metrics::{best_point, Objective, OperatingPoint};
pub use kde::Kde;
pub use modes::{find_modes, fwhm, high_power_mode, DensityProfile, Mode};
pub use perf::parallel_efficiency;
pub use periodicity::{autocorrelation, dominant_period};
pub use phases::{Phase, Segmenter};
pub use summary::{PowerSummary, ScreenedSummary};
pub use trace_diff::{diff as trace_diff, CounterDelta, DiffConfig, DiffRow, TraceDiff};
pub use violin::ViolinStats;
