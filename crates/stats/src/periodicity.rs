//! Periodicity analysis of power timelines.
//!
//! VASP's power timelines are quasi-periodic at the SCF-iteration scale
//! and MILC's at the trajectory scale (§III-C "power timeline patterns").
//! The autocorrelation function of the sampled power recovers that period —
//! a building block for the paper's §VI-C prediction agenda: iteration
//! period × iteration count estimates runtime from a short power prefix.

use crate::describe::mean;

/// Normalised autocorrelation of `xs` at lags `0..=max_lag`.
/// `acf[0] == 1` by construction; constant series return all-zero lags
/// (no structure), not NaNs.
///
/// # Panics
/// If `max_lag >= xs.len()` or `xs` is empty.
#[must_use]
pub fn autocorrelation(xs: &[f64], max_lag: usize) -> Vec<f64> {
    assert!(!xs.is_empty(), "empty series");
    assert!(max_lag < xs.len(), "max_lag {max_lag} >= length {}", xs.len());
    let m = mean(xs);
    let centred: Vec<f64> = xs.iter().map(|x| x - m).collect();
    let var: f64 = centred.iter().map(|c| c * c).sum();
    let mut acf = Vec::with_capacity(max_lag + 1);
    if var <= 1e-12 {
        acf.push(1.0);
        acf.extend(std::iter::repeat_n(0.0, max_lag));
        return acf;
    }
    for lag in 0..=max_lag {
        let cov: f64 = centred[..xs.len() - lag]
            .iter()
            .zip(&centred[lag..])
            .map(|(a, b)| a * b)
            .sum();
        acf.push(cov / var);
    }
    acf
}

/// Dominant period of a series, in samples: the lag of the first
/// significant autocorrelation peak. `None` when no periodic structure is
/// found above the `min_corr` threshold.
#[must_use]
pub fn dominant_period(xs: &[f64], max_lag: usize, min_corr: f64) -> Option<usize> {
    if xs.len() < 8 || max_lag < 2 {
        return None;
    }
    let acf = autocorrelation(xs, max_lag.min(xs.len() - 1));
    // First local maximum after the zero-lag peak decays.
    let mut lag = 1;
    while lag < acf.len() && acf[lag] > acf[lag.saturating_sub(1)].min(0.999) {
        lag += 1;
    }
    (lag..acf.len().saturating_sub(1))
        .filter(|&l| acf[l] >= acf[l - 1] && acf[l] >= acf[l + 1] && acf[l] >= min_corr)
        .max_by(|&a, &b| acf[a].total_cmp(&acf[b]))
}

/// Estimate a job's remaining runtime from a power prefix: detect the
/// iteration period, count completed iterations, extrapolate to
/// `total_iterations`. Returns `None` without detectable periodicity.
#[must_use]
pub fn extrapolate_runtime_s(
    prefix: &[f64],
    sample_interval_s: f64,
    total_iterations: usize,
) -> Option<f64> {
    let period = dominant_period(prefix, prefix.len() / 2, 0.2)?;
    let period_s = period as f64 * sample_interval_s;
    Some(period_s * total_iterations as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn periodic(n: usize, period: usize, lo: f64, hi: f64) -> Vec<f64> {
        (0..n)
            .map(|i| if (i % period) < period / 2 { hi } else { lo })
            .collect()
    }

    #[test]
    fn acf_is_one_at_lag_zero() {
        let xs = periodic(100, 10, 100.0, 300.0);
        let acf = autocorrelation(&xs, 30);
        assert!((acf[0] - 1.0).abs() < 1e-12);
        assert!(acf.iter().all(|a| a.abs() <= 1.0 + 1e-9));
    }

    #[test]
    fn acf_peaks_at_the_period() {
        let xs = periodic(400, 20, 500.0, 1800.0);
        let acf = autocorrelation(&xs, 60);
        assert!(acf[20] > 0.8, "acf[20] = {}", acf[20]);
        assert!(acf[10] < 0.0, "half-period anticorrelates: {}", acf[10]);
        assert!(acf[40] > 0.6, "harmonic at 2 periods: {}", acf[40]);
    }

    #[test]
    fn constant_series_has_no_structure() {
        let xs = vec![700.0; 64];
        let acf = autocorrelation(&xs, 16);
        assert_eq!(acf[0], 1.0);
        assert!(acf[1..].iter().all(|&a| a == 0.0));
        assert_eq!(dominant_period(&xs, 16, 0.2), None);
    }

    #[test]
    fn dominant_period_detects_square_waves() {
        for period in [8usize, 14, 25] {
            let xs = periodic(600, period, 600.0, 1700.0);
            let got = dominant_period(&xs, 200, 0.3).unwrap();
            assert!(
                got.abs_diff(period) <= 1,
                "period {period}: detected {got}"
            );
        }
    }

    #[test]
    fn noise_tolerant_detection() {
        // Add deterministic "noise" on top of a period-16 wave.
        let xs: Vec<f64> = periodic(512, 16, 800.0, 1600.0)
            .into_iter()
            .enumerate()
            .map(|(i, x)| x + 60.0 * ((i * 7919) % 13) as f64 / 13.0)
            .collect();
        let got = dominant_period(&xs, 128, 0.3).unwrap();
        assert!(got.abs_diff(16) <= 1, "detected {got}");
    }

    #[test]
    fn extrapolation_scales_with_iterations() {
        let xs = periodic(300, 12, 700.0, 1500.0);
        let t = extrapolate_runtime_s(&xs, 2.0, 40).unwrap();
        // period 12 samples × 2 s × 40 iterations = 960 s.
        assert!((t - 960.0).abs() < 200.0, "t = {t}");
    }

    #[test]
    #[should_panic(expected = "max_lag")]
    fn oversized_lag_panics() {
        let _ = autocorrelation(&[1.0, 2.0], 5);
    }
}
