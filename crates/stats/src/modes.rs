//! Mode detection, the high power mode, and FWHM (§III-B.3).
//!
//! The paper: *"we define the high power mode as the mode corresponding to
//! the highest power"*, determined from the KDE of the power timeline, and
//! characterise its spread with the full width at half maximum.
//!
//! [`DensityProfile`] fits the KDE and evaluates its grid **once**, then
//! answers [`modes`](DensityProfile::modes),
//! [`high_power_mode`](DensityProfile::high_power_mode) and
//! [`fwhm`](DensityProfile::fwhm) from the cached grid. The free functions
//! below keep the original one-shot API but delegate to a profile, so a
//! caller that needs both the mode and its FWHM (e.g.
//! [`crate::PowerSummary`]) no longer pays for two independent KDE fits
//! and grid evaluations.

use crate::kde::{Bandwidth, Kde};

/// One detected density mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mode {
    /// Location (power, watts).
    pub x: f64,
    /// Density at the mode.
    pub density: f64,
}

/// Default evaluation grid resolution.
pub const GRID_N: usize = 512;
/// A local maximum counts as a mode when its density is at least this
/// fraction of the global maximum (filters KDE ripples).
pub const MIN_PROMINENCE: f64 = 0.05;

/// A KDE fitted and grid-evaluated once, with the detected modes cached.
///
/// Amortises the expensive part of the §III-B.3 analysis: every query on
/// the profile is a cheap lookup on the precomputed `(xs, ys)` grid.
///
/// ```
/// let mut watts: Vec<f64> = (0..600).map(|i| 700.0 + (i % 20) as f64).collect();
/// watts.extend((0..300).map(|i| 1700.0 + (i % 20) as f64));
/// let prof = vpp_stats::DensityProfile::fit(&watts);
/// let mode = prof.high_power_mode();
/// let width = prof.fwhm(mode); // no refit, no second grid pass
/// assert!(mode.x > 1600.0 && width > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DensityProfile {
    xs: Vec<f64>,
    ys: Vec<f64>,
    modes: Vec<Mode>,
    bandwidth: f64,
}

impl DensityProfile {
    /// Fit with Silverman bandwidth on the default [`GRID_N`] grid.
    ///
    /// # Panics
    /// If `data` is empty or non-finite (propagated from the KDE fit).
    #[must_use]
    pub fn fit(data: &[f64]) -> Self {
        Self::with_grid(data, GRID_N)
    }

    /// Fit with Silverman bandwidth on an `n`-point grid.
    ///
    /// # Panics
    /// If `data` is empty or non-finite, or `n < 2`.
    #[must_use]
    pub fn with_grid(data: &[f64], n: usize) -> Self {
        let kde = Kde::fit(data, Bandwidth::Silverman);
        let (xs, ys) = kde.grid(n);
        let peak = ys.iter().copied().fold(0.0f64, f64::max);
        let mut modes = Vec::new();
        for i in 1..xs.len() - 1 {
            if ys[i] > ys[i - 1] && ys[i] >= ys[i + 1] && ys[i] >= MIN_PROMINENCE * peak {
                modes.push(Mode {
                    x: xs[i],
                    density: ys[i],
                });
            }
        }
        if modes.is_empty() {
            // Degenerate (monotone or constant) density: take the grid argmax.
            let (i, &d) = ys
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .expect("non-empty grid");
            modes.push(Mode { x: xs[i], density: d });
        }
        Self {
            xs,
            ys,
            modes,
            bandwidth: kde.bandwidth(),
        }
    }

    /// The detected modes in ascending `x` order (never empty).
    #[must_use]
    pub fn modes(&self) -> &[Mode] {
        &self.modes
    }

    /// The paper's headline metric: the mode at the highest power.
    #[must_use]
    pub fn high_power_mode(&self) -> Mode {
        *self.modes.last().expect("profile always has at least one mode")
    }

    /// Full width at half maximum of the density around `mode`, read off
    /// the cached grid: the distance between the nearest half-height
    /// crossings on either side of the mode.
    #[must_use]
    pub fn fwhm(&self, mode: Mode) -> f64 {
        let (xs, ys) = (&self.xs, &self.ys);
        let half = 0.5 * mode.density;
        // Index nearest the mode.
        let mi = xs
            .iter()
            .enumerate()
            .min_by(|a, b| (a.1 - mode.x).abs().total_cmp(&(b.1 - mode.x).abs()))
            .map(|(i, _)| i)
            .unwrap_or(0);
        // Walk left and right until the density falls below half height.
        let mut left = xs[0];
        for i in (0..=mi).rev() {
            if ys[i] < half {
                left = xs[i];
                break;
            }
        }
        let mut right = xs[xs.len() - 1];
        for (i, &x) in xs.iter().enumerate().skip(mi) {
            if ys[i] < half {
                right = x;
                break;
            }
        }
        right - left
    }

    /// The evaluated density grid `(xs, ys)`.
    #[must_use]
    pub fn grid(&self) -> (&[f64], &[f64]) {
        (&self.xs, &self.ys)
    }

    /// The Silverman bandwidth the profile was fitted with.
    #[must_use]
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }
}

/// Find the KDE modes of `data`, filtered by prominence. Returned in
/// ascending `x` order.
///
/// One-shot convenience over [`DensityProfile`]; fit a profile instead
/// when you also need the FWHM or the grid.
///
/// # Panics
/// If `data` is empty or non-finite (propagated from the KDE fit).
#[must_use]
pub fn find_modes(data: &[f64]) -> Vec<Mode> {
    DensityProfile::fit(data).modes.clone()
}

/// The paper's headline metric: the mode at the highest power.
///
/// ```
/// // A bimodal timeline: a dominant low mode and a weaker high mode.
/// let mut watts: Vec<f64> = (0..600).map(|i| 700.0 + (i % 20) as f64).collect();
/// watts.extend((0..300).map(|i| 1700.0 + (i % 20) as f64));
/// let mode = vpp_stats::high_power_mode(&watts);
/// assert!(mode.x > 1600.0, "the *highest-power* mode wins, not the densest");
/// ```
///
/// # Panics
/// If `data` is empty or non-finite.
#[must_use]
pub fn high_power_mode(data: &[f64]) -> Mode {
    DensityProfile::fit(data).high_power_mode()
}

/// Full width at half maximum of the density around `mode`: the distance
/// between the nearest half-height crossings on either side of the mode.
///
/// One-shot convenience that refits the profile; use
/// [`DensityProfile::fwhm`] to reuse an existing fit.
///
/// # Panics
/// If `data` is empty or non-finite.
#[must_use]
pub fn fwhm(data: &[f64], mode: Mode) -> f64 {
    DensityProfile::fit(data).fwhm(mode)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(center: f64, spread: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let u = ((i as f64 + 0.5) / n as f64) * 2.0 - 1.0; // (-1, 1)
                center + spread * u
            })
            .collect()
    }

    #[test]
    fn unimodal_data_has_one_mode_at_center() {
        let data = cluster(250.0, 10.0, 500);
        let modes = find_modes(&data);
        assert_eq!(modes.len(), 1, "{modes:?}");
        assert!((modes[0].x - 250.0).abs() < 5.0);
    }

    #[test]
    fn bimodal_data_yields_two_modes_high_one_wins() {
        let mut data = cluster(120.0, 8.0, 600); // dominant low mode
        data.extend(cluster(340.0, 8.0, 300)); // weaker high mode
        let modes = find_modes(&data);
        assert!(modes.len() >= 2, "{modes:?}");
        let hpm = high_power_mode(&data);
        assert!(
            (hpm.x - 340.0).abs() < 10.0,
            "high power mode should sit at the *highest power*, not the \
             most probable: {hpm:?}"
        );
        // ...even though the low mode is denser.
        assert!(modes[0].density > hpm.density);
    }

    #[test]
    fn weak_ripples_are_filtered() {
        // One strong cluster plus a couple of stray points.
        let mut data = cluster(200.0, 5.0, 1000);
        data.push(390.0);
        data.push(391.0);
        let modes = find_modes(&data);
        assert_eq!(modes.len(), 1, "stray points must not create modes: {modes:?}");
    }

    #[test]
    fn constant_data_has_a_mode_at_the_value() {
        let data = vec![777.0; 64];
        let m = high_power_mode(&data);
        assert!((m.x - 777.0).abs() < 1.0, "{m:?}");
    }

    #[test]
    fn fwhm_tracks_spread() {
        let narrow = cluster(300.0, 5.0, 800);
        let wide = cluster(300.0, 25.0, 800);
        let fn_ = fwhm(&narrow, high_power_mode(&narrow));
        let fw = fwhm(&wide, high_power_mode(&wide));
        assert!(fw > 2.0 * fn_, "narrow {fn_}, wide {fw}");
    }

    #[test]
    fn fwhm_is_positive_even_for_constant_data() {
        let data = vec![100.0; 32];
        let w = fwhm(&data, high_power_mode(&data));
        assert!(w >= 0.0 && w.is_finite());
    }

    #[test]
    fn modes_are_sorted_ascending() {
        let mut data = cluster(100.0, 6.0, 300);
        data.extend(cluster(200.0, 6.0, 300));
        data.extend(cluster(300.0, 6.0, 300));
        let modes = find_modes(&data);
        for w in modes.windows(2) {
            assert!(w[0].x < w[1].x);
        }
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn empty_input_panics() {
        let _ = high_power_mode(&[]);
    }

    #[test]
    fn profile_matches_one_shot_functions() {
        let mut data = cluster(120.0, 8.0, 600);
        data.extend(cluster(340.0, 8.0, 300));
        let prof = DensityProfile::fit(&data);
        assert_eq!(prof.modes(), find_modes(&data).as_slice());
        let hpm = prof.high_power_mode();
        assert_eq!(hpm, high_power_mode(&data));
        assert_eq!(prof.fwhm(hpm), fwhm(&data, hpm));
        assert!(prof.bandwidth() > 0.0);
        let (xs, ys) = prof.grid();
        assert_eq!(xs.len(), GRID_N);
        assert_eq!(ys.len(), GRID_N);
    }
}
