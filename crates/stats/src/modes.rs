//! Mode detection, the high power mode, and FWHM (§III-B.3).
//!
//! The paper: *"we define the high power mode as the mode corresponding to
//! the highest power"*, determined from the KDE of the power timeline, and
//! characterise its spread with the full width at half maximum.

use crate::kde::{Bandwidth, Kde};

/// One detected density mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mode {
    /// Location (power, watts).
    pub x: f64,
    /// Density at the mode.
    pub density: f64,
}

/// Default evaluation grid resolution.
pub const GRID_N: usize = 512;
/// A local maximum counts as a mode when its density is at least this
/// fraction of the global maximum (filters KDE ripples).
pub const MIN_PROMINENCE: f64 = 0.05;

/// Find the KDE modes of `data`, strongest-first filtering by prominence.
/// Returned in ascending `x` order.
///
/// # Panics
/// If `data` is empty or non-finite (propagated from the KDE fit).
#[must_use]
pub fn find_modes(data: &[f64]) -> Vec<Mode> {
    let kde = Kde::fit(data, Bandwidth::Silverman);
    let (xs, ys) = kde.grid(GRID_N);
    let peak = ys.iter().copied().fold(0.0f64, f64::max);
    let mut modes = Vec::new();
    for i in 1..xs.len() - 1 {
        if ys[i] > ys[i - 1] && ys[i] >= ys[i + 1] && ys[i] >= MIN_PROMINENCE * peak {
            modes.push(Mode {
                x: xs[i],
                density: ys[i],
            });
        }
    }
    if modes.is_empty() {
        // Degenerate (monotone or constant) density: take the grid argmax.
        let (i, &d) = ys
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("non-empty grid");
        modes.push(Mode { x: xs[i], density: d });
    }
    modes
}

/// The paper's headline metric: the mode at the highest power.
///
/// ```
/// // A bimodal timeline: a dominant low mode and a weaker high mode.
/// let mut watts: Vec<f64> = (0..600).map(|i| 700.0 + (i % 20) as f64).collect();
/// watts.extend((0..300).map(|i| 1700.0 + (i % 20) as f64));
/// let mode = vpp_stats::high_power_mode(&watts);
/// assert!(mode.x > 1600.0, "the *highest-power* mode wins, not the densest");
/// ```
///
/// # Panics
/// If `data` is empty or non-finite.
#[must_use]
pub fn high_power_mode(data: &[f64]) -> Mode {
    *find_modes(data)
        .last()
        .expect("find_modes always returns at least one mode")
}

/// Full width at half maximum of the density around `mode`: the distance
/// between the nearest half-height crossings on either side of the mode.
///
/// # Panics
/// If `data` is empty or non-finite.
#[must_use]
pub fn fwhm(data: &[f64], mode: Mode) -> f64 {
    let kde = Kde::fit(data, Bandwidth::Silverman);
    let (xs, ys) = kde.grid(GRID_N);
    let half = 0.5 * mode.density;
    // Index nearest the mode.
    let mi = xs
        .iter()
        .enumerate()
        .min_by(|a, b| (a.1 - mode.x).abs().total_cmp(&(b.1 - mode.x).abs()))
        .map(|(i, _)| i)
        .unwrap_or(0);
    // Walk left and right until the density falls below half height.
    let mut left = xs[0];
    for i in (0..=mi).rev() {
        if ys[i] < half {
            left = xs[i];
            break;
        }
    }
    let mut right = xs[xs.len() - 1];
    for (i, &x) in xs.iter().enumerate().skip(mi) {
        if ys[i] < half {
            right = x;
            break;
        }
    }
    right - left
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(center: f64, spread: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let u = ((i as f64 + 0.5) / n as f64) * 2.0 - 1.0; // (-1, 1)
                center + spread * u
            })
            .collect()
    }

    #[test]
    fn unimodal_data_has_one_mode_at_center() {
        let data = cluster(250.0, 10.0, 500);
        let modes = find_modes(&data);
        assert_eq!(modes.len(), 1, "{modes:?}");
        assert!((modes[0].x - 250.0).abs() < 5.0);
    }

    #[test]
    fn bimodal_data_yields_two_modes_high_one_wins() {
        let mut data = cluster(120.0, 8.0, 600); // dominant low mode
        data.extend(cluster(340.0, 8.0, 300)); // weaker high mode
        let modes = find_modes(&data);
        assert!(modes.len() >= 2, "{modes:?}");
        let hpm = high_power_mode(&data);
        assert!(
            (hpm.x - 340.0).abs() < 10.0,
            "high power mode should sit at the *highest power*, not the \
             most probable: {hpm:?}"
        );
        // ...even though the low mode is denser.
        assert!(modes[0].density > hpm.density);
    }

    #[test]
    fn weak_ripples_are_filtered() {
        // One strong cluster plus a couple of stray points.
        let mut data = cluster(200.0, 5.0, 1000);
        data.push(390.0);
        data.push(391.0);
        let modes = find_modes(&data);
        assert_eq!(modes.len(), 1, "stray points must not create modes: {modes:?}");
    }

    #[test]
    fn constant_data_has_a_mode_at_the_value() {
        let data = vec![777.0; 64];
        let m = high_power_mode(&data);
        assert!((m.x - 777.0).abs() < 1.0, "{m:?}");
    }

    #[test]
    fn fwhm_tracks_spread() {
        let narrow = cluster(300.0, 5.0, 800);
        let wide = cluster(300.0, 25.0, 800);
        let fn_ = fwhm(&narrow, high_power_mode(&narrow));
        let fw = fwhm(&wide, high_power_mode(&wide));
        assert!(fw > 2.0 * fn_, "narrow {fn_}, wide {fw}");
    }

    #[test]
    fn fwhm_is_positive_even_for_constant_data() {
        let data = vec![100.0; 32];
        let w = fwhm(&data, high_power_mode(&data));
        assert!(w >= 0.0 && w.is_finite());
    }

    #[test]
    fn modes_are_sorted_ascending() {
        let mut data = cluster(100.0, 6.0, 300);
        data.extend(cluster(200.0, 6.0, 300));
        data.extend(cluster(300.0, 6.0, 300));
        let modes = find_modes(&data);
        for w in modes.windows(2) {
            assert!(w[0].x < w[1].x);
        }
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn empty_input_panics() {
        let _ = high_power_mode(&[]);
    }
}
