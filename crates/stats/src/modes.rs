//! Mode detection, the high power mode, and FWHM (§III-B.3).
//!
//! The paper: *"we define the high power mode as the mode corresponding to
//! the highest power"*, determined from the KDE of the power timeline, and
//! characterise its spread with the full width at half maximum.
//!
//! [`DensityProfile`] fits the KDE and evaluates its grid **once**, then
//! answers [`modes`](DensityProfile::modes),
//! [`high_power_mode`](DensityProfile::high_power_mode) and
//! [`fwhm`](DensityProfile::fwhm) from the cached grid. The free functions
//! below keep the original one-shot API but delegate to a profile, so a
//! caller that needs both the mode and its FWHM (e.g.
//! [`crate::PowerSummary`]) no longer pays for two independent KDE fits
//! and grid evaluations.

use crate::kde::{Bandwidth, Kde};

/// One detected density mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mode {
    /// Location (power, watts).
    pub x: f64,
    /// Density at the mode.
    pub density: f64,
}

/// Default evaluation grid resolution.
pub const GRID_N: usize = 512;
/// A local maximum counts as a mode when its density is at least this
/// fraction of the global maximum (filters KDE ripples).
pub const MIN_PROMINENCE: f64 = 0.05;

/// A half-maximum width measurement with its crossing coordinates and
/// saturation flags (see [`DensityProfile::fwhm_detailed`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FwhmEstimate {
    /// `right - left`, watts.
    pub width: f64,
    /// Interpolated left half-height crossing (or the grid edge when
    /// saturated).
    pub left: f64,
    /// Interpolated right half-height crossing (or the grid edge when
    /// saturated).
    pub right: f64,
    /// The density never fell below half height left of the mode: `left`
    /// is the grid edge and the true crossing lies outside the grid.
    pub saturated_left: bool,
    /// Same on the right side.
    pub saturated_right: bool,
}

impl FwhmEstimate {
    /// True when either side never crossed half height, i.e. `width` is a
    /// lower bound clipped by the evaluation grid rather than a true FWHM.
    #[must_use]
    pub fn saturated(&self) -> bool {
        self.saturated_left || self.saturated_right
    }
}

/// A KDE fitted and grid-evaluated once, with the detected modes cached.
///
/// Amortises the expensive part of the §III-B.3 analysis: every query on
/// the profile is a cheap lookup on the precomputed `(xs, ys)` grid.
///
/// ```
/// let mut watts: Vec<f64> = (0..600).map(|i| 700.0 + (i % 20) as f64).collect();
/// watts.extend((0..300).map(|i| 1700.0 + (i % 20) as f64));
/// let prof = vpp_stats::DensityProfile::fit(&watts);
/// let mode = prof.high_power_mode();
/// let width = prof.fwhm(mode); // no refit, no second grid pass
/// assert!(mode.x > 1600.0 && width > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DensityProfile {
    xs: Vec<f64>,
    ys: Vec<f64>,
    modes: Vec<Mode>,
    bandwidth: f64,
}

impl DensityProfile {
    /// Fit with Silverman bandwidth on the default [`GRID_N`] grid.
    ///
    /// # Panics
    /// If `data` is empty or non-finite (propagated from the KDE fit).
    #[must_use]
    pub fn fit(data: &[f64]) -> Self {
        Self::with_grid(data, GRID_N)
    }

    /// Fit with Silverman bandwidth on an `n`-point grid.
    ///
    /// # Panics
    /// If `data` is empty or non-finite, or `n < 2`.
    #[must_use]
    pub fn with_grid(data: &[f64], n: usize) -> Self {
        let kde = Kde::fit(data, Bandwidth::Silverman);
        let (xs, ys) = kde.grid(n);
        let modes = detect_modes(&xs, &ys);
        Self {
            xs,
            ys,
            modes,
            bandwidth: kde.bandwidth(),
        }
    }

    /// The detected modes in ascending `x` order (never empty).
    #[must_use]
    pub fn modes(&self) -> &[Mode] {
        &self.modes
    }

    /// The paper's headline metric: the mode at the highest power.
    #[must_use]
    pub fn high_power_mode(&self) -> Mode {
        *self.modes.last().expect("profile always has at least one mode")
    }

    /// Full width at half maximum of the density around `mode`, read off
    /// the cached grid: the distance between the nearest half-height
    /// crossings on either side of the mode.
    ///
    /// Shorthand for [`fwhm_detailed`](Self::fwhm_detailed)`.width`.
    #[must_use]
    pub fn fwhm(&self, mode: Mode) -> f64 {
        self.fwhm_detailed(mode).width
    }

    /// Full width at half maximum of the density around `mode`, with the
    /// crossing coordinates and saturation flags.
    ///
    /// Each half-height crossing is located by **linear interpolation**
    /// between the bracketing grid points. The previous implementation
    /// snapped to the first grid point *below* half height, which
    /// systematically overestimated the width by up to one grid step per
    /// side (~0.4% of the domain per side on the default 512-point grid —
    /// enough to swamp narrow modes). When the density never falls below
    /// half height on a side, the corresponding `saturated_*` flag is set
    /// and the grid edge is used, making `width` an explicit lower bound
    /// rather than a silent guess.
    #[must_use]
    pub fn fwhm_detailed(&self, mode: Mode) -> FwhmEstimate {
        let (xs, ys) = (&self.xs, &self.ys);
        let half = 0.5 * mode.density;
        // Index nearest the mode.
        let mi = xs
            .iter()
            .enumerate()
            .min_by(|a, b| (a.1 - mode.x).abs().total_cmp(&(b.1 - mode.x).abs()))
            .map(|(i, _)| i)
            .unwrap_or(0);
        // Walk left until the density falls below half height, then place
        // the crossing between that point and its inner neighbour.
        let mut left = xs[0];
        let mut saturated_left = true;
        for i in (0..=mi).rev() {
            if ys[i] < half {
                left = if i + 1 < xs.len() {
                    interpolate_crossing(xs[i], ys[i], xs[i + 1], ys[i + 1], half)
                } else {
                    xs[i]
                };
                saturated_left = false;
                break;
            }
        }
        let mut right = xs[xs.len() - 1];
        let mut saturated_right = true;
        for i in mi..xs.len() {
            if ys[i] < half {
                right = if i > 0 {
                    interpolate_crossing(xs[i], ys[i], xs[i - 1], ys[i - 1], half)
                } else {
                    xs[i]
                };
                saturated_right = false;
                break;
            }
        }
        FwhmEstimate {
            width: right - left,
            left,
            right,
            saturated_left,
            saturated_right,
        }
    }

    /// Build a profile directly from an evaluated `(xs, ys)` grid instead
    /// of fitting a KDE — for analytic grids in tests and for replaying an
    /// exported grid. Modes are detected with the same prominence rule as
    /// [`with_grid`](Self::with_grid); `bandwidth` is reported as 0.
    ///
    /// # Panics
    /// If the grid has fewer than two points, the lengths differ, or any
    /// value is non-finite.
    #[must_use]
    pub fn from_grid(xs: Vec<f64>, ys: Vec<f64>) -> Self {
        assert!(xs.len() >= 2, "grid needs at least 2 points");
        assert_eq!(xs.len(), ys.len(), "grid lengths differ");
        assert!(
            xs.iter().chain(&ys).all(|v| v.is_finite()),
            "grid must be finite"
        );
        let modes = detect_modes(&xs, &ys);
        Self {
            xs,
            ys,
            modes,
            bandwidth: 0.0,
        }
    }

    /// The evaluated density grid `(xs, ys)`.
    #[must_use]
    pub fn grid(&self) -> (&[f64], &[f64]) {
        (&self.xs, &self.ys)
    }

    /// The Silverman bandwidth the profile was fitted with.
    #[must_use]
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }
}

/// Detect prominence-filtered local maxima on an evaluated grid, falling
/// back to the argmax for degenerate (monotone or constant) densities.
fn detect_modes(xs: &[f64], ys: &[f64]) -> Vec<Mode> {
    let peak = ys.iter().copied().fold(0.0f64, f64::max);
    let mut modes = Vec::new();
    for i in 1..xs.len() - 1 {
        if ys[i] > ys[i - 1] && ys[i] >= ys[i + 1] && ys[i] >= MIN_PROMINENCE * peak {
            modes.push(Mode {
                x: xs[i],
                density: ys[i],
            });
        }
    }
    if modes.is_empty() {
        let (i, &d) = ys
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("non-empty grid");
        modes.push(Mode { x: xs[i], density: d });
    }
    modes
}

/// Abscissa where the segment from `(x_below, y_below)` to `(x_above,
/// y_above)` crosses `level`, clamped inside the segment. Falls back to
/// `x_below` when the segment is flat (both sides below the level).
fn interpolate_crossing(x_below: f64, y_below: f64, x_above: f64, y_above: f64, level: f64) -> f64 {
    let dy = y_above - y_below;
    if dy.abs() < f64::MIN_POSITIVE {
        return x_below;
    }
    let t = ((level - y_below) / dy).clamp(0.0, 1.0);
    x_below + t * (x_above - x_below)
}

/// Find the KDE modes of `data`, filtered by prominence. Returned in
/// ascending `x` order.
///
/// One-shot convenience over [`DensityProfile`]; fit a profile instead
/// when you also need the FWHM or the grid.
///
/// # Panics
/// If `data` is empty or non-finite (propagated from the KDE fit).
#[must_use]
pub fn find_modes(data: &[f64]) -> Vec<Mode> {
    DensityProfile::fit(data).modes.clone()
}

/// The paper's headline metric: the mode at the highest power.
///
/// ```
/// // A bimodal timeline: a dominant low mode and a weaker high mode.
/// let mut watts: Vec<f64> = (0..600).map(|i| 700.0 + (i % 20) as f64).collect();
/// watts.extend((0..300).map(|i| 1700.0 + (i % 20) as f64));
/// let mode = vpp_stats::high_power_mode(&watts);
/// assert!(mode.x > 1600.0, "the *highest-power* mode wins, not the densest");
/// ```
///
/// # Panics
/// If `data` is empty or non-finite.
#[must_use]
pub fn high_power_mode(data: &[f64]) -> Mode {
    DensityProfile::fit(data).high_power_mode()
}

/// Full width at half maximum of the density around `mode`: the distance
/// between the nearest half-height crossings on either side of the mode.
///
/// One-shot convenience that refits the profile; use
/// [`DensityProfile::fwhm`] to reuse an existing fit.
///
/// # Panics
/// If `data` is empty or non-finite.
#[must_use]
pub fn fwhm(data: &[f64], mode: Mode) -> f64 {
    DensityProfile::fit(data).fwhm(mode)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(center: f64, spread: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let u = ((i as f64 + 0.5) / n as f64) * 2.0 - 1.0; // (-1, 1)
                center + spread * u
            })
            .collect()
    }

    #[test]
    fn unimodal_data_has_one_mode_at_center() {
        let data = cluster(250.0, 10.0, 500);
        let modes = find_modes(&data);
        assert_eq!(modes.len(), 1, "{modes:?}");
        assert!((modes[0].x - 250.0).abs() < 5.0);
    }

    #[test]
    fn bimodal_data_yields_two_modes_high_one_wins() {
        let mut data = cluster(120.0, 8.0, 600); // dominant low mode
        data.extend(cluster(340.0, 8.0, 300)); // weaker high mode
        let modes = find_modes(&data);
        assert!(modes.len() >= 2, "{modes:?}");
        let hpm = high_power_mode(&data);
        assert!(
            (hpm.x - 340.0).abs() < 10.0,
            "high power mode should sit at the *highest power*, not the \
             most probable: {hpm:?}"
        );
        // ...even though the low mode is denser.
        assert!(modes[0].density > hpm.density);
    }

    #[test]
    fn weak_ripples_are_filtered() {
        // One strong cluster plus a couple of stray points.
        let mut data = cluster(200.0, 5.0, 1000);
        data.push(390.0);
        data.push(391.0);
        let modes = find_modes(&data);
        assert_eq!(modes.len(), 1, "stray points must not create modes: {modes:?}");
    }

    #[test]
    fn constant_data_has_a_mode_at_the_value() {
        let data = vec![777.0; 64];
        let m = high_power_mode(&data);
        assert!((m.x - 777.0).abs() < 1.0, "{m:?}");
    }

    #[test]
    fn fwhm_tracks_spread() {
        let narrow = cluster(300.0, 5.0, 800);
        let wide = cluster(300.0, 25.0, 800);
        let fn_ = fwhm(&narrow, high_power_mode(&narrow));
        let fw = fwhm(&wide, high_power_mode(&wide));
        assert!(fw > 2.0 * fn_, "narrow {fn_}, wide {fw}");
    }

    #[test]
    fn fwhm_is_positive_even_for_constant_data() {
        let data = vec![100.0; 32];
        let w = fwhm(&data, high_power_mode(&data));
        assert!(w >= 0.0 && w.is_finite());
    }

    #[test]
    fn modes_are_sorted_ascending() {
        let mut data = cluster(100.0, 6.0, 300);
        data.extend(cluster(200.0, 6.0, 300));
        data.extend(cluster(300.0, 6.0, 300));
        let modes = find_modes(&data);
        for w in modes.windows(2) {
            assert!(w[0].x < w[1].x);
        }
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn empty_input_panics() {
        let _ = high_power_mode(&[]);
    }

    /// Acklam's rational approximation to the inverse normal CDF
    /// (|relative error| < 1.15e-9): enough to manufacture stratified
    /// Gaussian samples without a random number generator.
    #[allow(clippy::excessive_precision)] // published Acklam coefficients, kept verbatim
    fn inv_norm_cdf(p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0);
        const A: [f64; 6] = [
            -3.969683028665376e+01,
            2.209460984245205e+02,
            -2.759285104469687e+02,
            1.383577518672690e+02,
            -3.066479806614716e+01,
            2.506628277459239e+00,
        ];
        const B: [f64; 5] = [
            -5.447609879822406e+01,
            1.615858368580409e+02,
            -1.556989798598866e+02,
            6.680131188771972e+01,
            -1.328068155288572e+01,
        ];
        const C: [f64; 6] = [
            -7.784894002430293e-03,
            -3.223964580411365e-01,
            -2.400758277161838e+00,
            -2.549732539343734e+00,
            4.374664141464968e+00,
            2.938163982698783e+00,
        ];
        const D: [f64; 4] = [
            7.784695709041462e-03,
            3.224671290700398e-01,
            2.445134137142996e+00,
            3.754408661907416e+00,
        ];
        const P_LOW: f64 = 0.02425;
        if p < P_LOW {
            let q = (-2.0 * p.ln()).sqrt();
            (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
                / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
        } else if p <= 1.0 - P_LOW {
            let q = p - 0.5;
            let r = q * q;
            (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
                / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
        } else {
            let q = (-2.0 * (1.0 - p).ln()).sqrt();
            -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
                / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
        }
    }

    #[test]
    fn gaussian_fwhm_matches_the_analytic_value() {
        // Regression for the grid-snap bug: the old walk returned the
        // first grid point *below* half height, inflating the width by up
        // to one grid step per side. For N(400, 10²) the analytic FWHM is
        // 2·√(2 ln 2)·σ ≈ 23.548; KDE bandwidth widening at n = 20 000
        // contributes ≈ +1%, so the interpolated estimate must land
        // within 2% while the snapped one drifted further out.
        let sigma = 10.0;
        let n = 20_000;
        let data: Vec<f64> = (0..n)
            .map(|i| 400.0 + sigma * inv_norm_cdf((i as f64 + 0.5) / n as f64))
            .collect();
        let prof = DensityProfile::fit(&data);
        let mode = prof.high_power_mode();
        let est = prof.fwhm_detailed(mode);
        assert!(!est.saturated(), "{est:?}");
        let expected = 2.0 * (2.0 * std::f64::consts::LN_2).sqrt() * sigma;
        let rel = (est.width - expected).abs() / expected;
        assert!(
            rel < 0.02,
            "FWHM {} vs analytic {expected}: off by {:.2}%",
            est.width,
            100.0 * rel
        );
        // The crossings are symmetric about the mode for a symmetric density.
        assert!((mode.x - est.left - (est.right - mode.x)).abs() < 0.5, "{est:?}");
    }

    #[test]
    fn interpolated_crossings_are_exact_on_an_analytic_grid() {
        // A triangle density on a deliberately coarse grid: the true
        // half-height crossings sit mid-segment, where grid snapping is
        // maximally wrong (a full step per side) but linear interpolation
        // is exact because the density *is* piecewise linear.
        let xs: Vec<f64> = (0..21).map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| (10.0 - (x - 10.0).abs()).max(0.0)).collect();
        let prof = DensityProfile::from_grid(xs, ys);
        let mode = prof.high_power_mode();
        assert!((mode.x - 10.0).abs() < 1e-12);
        let est = prof.fwhm_detailed(mode);
        // Half height 5.0 is crossed exactly at x = 5 and x = 15.
        assert!((est.left - 5.0).abs() < 1e-12, "{est:?}");
        assert!((est.right - 15.0).abs() < 1e-12, "{est:?}");
        assert!((est.width - 10.0).abs() < 1e-12, "{est:?}");
        assert!(!est.saturated());
    }

    #[test]
    fn density_never_below_half_is_flagged_saturated() {
        // A hump that plateaus above half height on the right: the right
        // crossing lies outside the grid, so the estimate must say so
        // instead of silently returning the domain edge as a crossing.
        let xs: Vec<f64> = (0..11).map(f64::from).collect();
        let ys = vec![0.1, 0.3, 0.8, 1.0, 0.9, 0.8, 0.7, 0.7, 0.7, 0.7, 0.7];
        let prof = DensityProfile::from_grid(xs.clone(), ys);
        let mode = prof.high_power_mode();
        let est = prof.fwhm_detailed(mode);
        assert!(!est.saturated_left, "{est:?}");
        assert!(est.saturated_right, "{est:?}");
        assert!(est.saturated());
        assert!((est.right - 10.0).abs() < 1e-12, "clips to the grid edge: {est:?}");
        assert_eq!(prof.fwhm(mode), est.width, "fwhm() delegates to the estimate");
    }

    #[test]
    fn profile_matches_one_shot_functions() {
        let mut data = cluster(120.0, 8.0, 600);
        data.extend(cluster(340.0, 8.0, 300));
        let prof = DensityProfile::fit(&data);
        assert_eq!(prof.modes(), find_modes(&data).as_slice());
        let hpm = prof.high_power_mode();
        assert_eq!(hpm, high_power_mode(&data));
        assert_eq!(prof.fwhm(hpm), fwhm(&data, hpm));
        assert!(prof.bandwidth() > 0.0);
        let (xs, ys) = prof.grid();
        assert_eq!(xs.len(), GRID_N);
        assert_eq!(ys.len(), GRID_N);
    }
}
