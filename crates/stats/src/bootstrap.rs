//! Bootstrap uncertainty for the paper's metrics.
//!
//! The paper reports point estimates (high power mode, FWHM) from a single
//! representative run. For methodological completeness we provide bootstrap
//! confidence intervals: resample the power samples with replacement,
//! recompute the statistic, and take percentile bounds. The deterministic
//! resampler keeps results reproducible.

use crate::modes::high_power_mode;

/// A percentile bootstrap confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate on the full sample.
    pub estimate: f64,
    /// Lower percentile bound.
    pub lo: f64,
    /// Upper percentile bound.
    pub hi: f64,
    /// Nominal coverage (e.g. 0.95).
    pub level: f64,
}

impl ConfidenceInterval {
    /// Interval width.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Whether the interval contains `x`.
    #[must_use]
    pub fn contains(&self, x: f64) -> bool {
        (self.lo..=self.hi).contains(&x)
    }
}

/// Deterministic multiplicative-congruential index stream for resampling.
struct IndexStream(u64);

impl IndexStream {
    fn next_index(&mut self, n: usize) -> usize {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        ((self.0 >> 33) as usize) % n
    }
}

/// Percentile bootstrap for an arbitrary statistic.
///
/// # Panics
/// If `data` is empty, `resamples == 0`, or `level` outside `(0, 1)`.
#[must_use]
pub fn bootstrap_ci(
    data: &[f64],
    resamples: usize,
    level: f64,
    seed: u64,
    statistic: impl Fn(&[f64]) -> f64,
) -> ConfidenceInterval {
    assert!(!data.is_empty(), "bootstrap of empty data");
    assert!(resamples > 0, "need at least one resample");
    assert!((0.0..1.0).contains(&level) && level > 0.0, "bad level {level}");
    let estimate = statistic(data);
    let mut stream = IndexStream(seed ^ 0xB007_57A9);
    let mut stats: Vec<f64> = (0..resamples)
        .map(|_| {
            let resample: Vec<f64> = (0..data.len())
                .map(|_| data[stream.next_index(data.len())])
                .collect();
            statistic(&resample)
        })
        .collect();
    stats.sort_by(f64::total_cmp);
    let alpha = (1.0 - level) / 2.0;
    let idx = |p: f64| {
        ((p * (stats.len() - 1) as f64).round() as usize).min(stats.len() - 1)
    };
    ConfidenceInterval {
        estimate,
        lo: stats[idx(alpha)],
        hi: stats[idx(1.0 - alpha)],
        level,
    }
}

/// 95 % CI for the high power mode of a power sample.
#[must_use]
pub fn high_power_mode_ci(data: &[f64], resamples: usize, seed: u64) -> ConfidenceInterval {
    bootstrap_ci(data, resamples, 0.95, seed, |xs| high_power_mode(xs).x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::describe::mean;

    fn bimodal() -> Vec<f64> {
        let mut v: Vec<f64> = (0..400).map(|i| 700.0 + (i % 40) as f64).collect();
        v.extend((0..400).map(|i| 1700.0 + (i % 40) as f64));
        v
    }

    #[test]
    fn ci_brackets_the_estimate() {
        let data = bimodal();
        let ci = high_power_mode_ci(&data, 200, 1);
        assert!(ci.lo <= ci.estimate && ci.estimate <= ci.hi, "{ci:?}");
        assert!(ci.contains(ci.estimate));
        assert!(ci.width() < 120.0, "mode CI should be tight: {ci:?}");
        assert!((1650.0..1800.0).contains(&ci.estimate));
    }

    #[test]
    fn ci_is_deterministic_per_seed() {
        let data = bimodal();
        let a = high_power_mode_ci(&data, 100, 7);
        let b = high_power_mode_ci(&data, 100, 7);
        assert_eq!(a, b);
        let c = high_power_mode_ci(&data, 100, 8);
        assert!(a != c || a.width() == 0.0);
    }

    #[test]
    fn mean_ci_narrows_with_more_data() {
        let small: Vec<f64> = (0..40).map(|i| 100.0 + (i * 37 % 100) as f64).collect();
        let large: Vec<f64> = (0..4000).map(|i| 100.0 + (i * 37 % 100) as f64).collect();
        let ci_small = bootstrap_ci(&small, 300, 0.95, 3, mean);
        let ci_large = bootstrap_ci(&large, 300, 0.95, 3, mean);
        assert!(ci_large.width() < ci_small.width());
    }

    #[test]
    fn constant_data_has_zero_width() {
        let data = vec![500.0; 50];
        let ci = bootstrap_ci(&data, 100, 0.9, 1, mean);
        assert_eq!(ci.width(), 0.0);
        assert_eq!(ci.estimate, 500.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_data_panics() {
        let _ = bootstrap_ci(&[], 10, 0.95, 0, mean);
    }

    #[test]
    #[should_panic(expected = "bad level")]
    fn bad_level_panics() {
        let _ = bootstrap_ci(&[1.0], 10, 1.5, 0, mean);
    }
}
