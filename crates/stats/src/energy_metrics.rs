//! Energy/performance trade-off metrics.
//!
//! The paper's related-work section (§VII, refs [49]–[51]) surveys metrics
//! for quantifying the energy/performance trade-off power management
//! introduces: plain energy, energy-delay product (EDP), and
//! energy-delay-squared (ED²P, Martin's ET² metric). This module implements
//! them over measured `(cap, energy, runtime)` points so a per-workload
//! "best cap" can be chosen under any of the three objectives.

/// One measured operating point of a workload under a power cap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Applied GPU cap, watts.
    pub cap_w: f64,
    /// Energy-to-solution, joules.
    pub energy_j: f64,
    /// Runtime, seconds.
    pub runtime_s: f64,
}

impl OperatingPoint {
    /// Energy-delay product, J·s.
    #[must_use]
    pub fn edp(&self) -> f64 {
        self.energy_j * self.runtime_s
    }

    /// Energy-delay-squared product (ET²), J·s².
    #[must_use]
    pub fn ed2p(&self) -> f64 {
        self.energy_j * self.runtime_s * self.runtime_s
    }
}

/// The objective to minimise when picking a cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Minimise energy-to-solution (throughput-insensitive).
    Energy,
    /// Balance energy and delay (EDP).
    Edp,
    /// Delay-dominated balance (ED²P) — closest to "performance first".
    Ed2p,
}

/// The operating point minimising `objective`.
///
/// # Panics
/// If `points` is empty or any point is non-positive.
#[must_use]
pub fn best_point(points: &[OperatingPoint], objective: Objective) -> OperatingPoint {
    assert!(!points.is_empty(), "no operating points");
    for p in points {
        assert!(
            p.cap_w > 0.0 && p.energy_j > 0.0 && p.runtime_s > 0.0,
            "bad operating point {p:?}"
        );
    }
    let score = |p: &OperatingPoint| match objective {
        Objective::Energy => p.energy_j,
        Objective::Edp => p.edp(),
        Objective::Ed2p => p.ed2p(),
    };
    *points
        .iter()
        .min_by(|a, b| score(a).total_cmp(&score(b)))
        .expect("non-empty")
}

/// The Pareto-optimal subset of operating points under (runtime, energy):
/// a point survives if no other point is at least as fast *and* at least
/// as frugal (with one strict). Returned sorted by runtime.
///
/// # Panics
/// If `points` is empty or contains non-positive values.
#[must_use]
pub fn pareto_front(points: &[OperatingPoint]) -> Vec<OperatingPoint> {
    assert!(!points.is_empty(), "no operating points");
    let mut front: Vec<OperatingPoint> = points
        .iter()
        .filter(|p| {
            !points.iter().any(|q| {
                q.runtime_s <= p.runtime_s
                    && q.energy_j <= p.energy_j
                    && (q.runtime_s < p.runtime_s || q.energy_j < p.energy_j)
            })
        })
        .copied()
        .collect();
    front.sort_by(|a, b| a.runtime_s.total_cmp(&b.runtime_s));
    front.dedup_by(|a, b| a.runtime_s == b.runtime_s && a.energy_j == b.energy_j);
    front
}

/// Relative regret of choosing `chosen` instead of the optimum under
/// `objective` (0 = optimal).
#[must_use]
pub fn regret(points: &[OperatingPoint], chosen: &OperatingPoint, objective: Objective) -> f64 {
    let best = best_point(points, objective);
    let score = |p: &OperatingPoint| match objective {
        Objective::Energy => p.energy_j,
        Objective::Edp => p.edp(),
        Objective::Ed2p => p.ed2p(),
    };
    score(chosen) / score(&best) - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A VASP-hungry-like response: deep caps save energy but cost a lot
    /// of time.
    fn hungry() -> Vec<OperatingPoint> {
        vec![
            OperatingPoint { cap_w: 400.0, energy_j: 2.2e6, runtime_s: 1300.0 },
            OperatingPoint { cap_w: 300.0, energy_j: 2.0e6, runtime_s: 1310.0 },
            OperatingPoint { cap_w: 200.0, energy_j: 1.6e6, runtime_s: 1400.0 },
            OperatingPoint { cap_w: 100.0, energy_j: 1.4e6, runtime_s: 3700.0 },
        ]
    }

    /// A cap-tolerant response: deep caps are almost free.
    fn tolerant() -> Vec<OperatingPoint> {
        vec![
            OperatingPoint { cap_w: 400.0, energy_j: 0.9e6, runtime_s: 1100.0 },
            OperatingPoint { cap_w: 200.0, energy_j: 0.75e6, runtime_s: 1105.0 },
            OperatingPoint { cap_w: 100.0, energy_j: 0.70e6, runtime_s: 1120.0 },
        ]
    }

    #[test]
    fn objectives_disagree_where_they_should() {
        let pts = hungry();
        assert_eq!(best_point(&pts, Objective::Energy).cap_w, 100.0);
        assert_eq!(best_point(&pts, Objective::Edp).cap_w, 200.0);
        assert_eq!(best_point(&pts, Objective::Ed2p).cap_w, 200.0);
    }

    #[test]
    fn tolerant_workloads_cap_deep_under_every_objective() {
        let pts = tolerant();
        for obj in [Objective::Energy, Objective::Edp, Objective::Ed2p] {
            assert_eq!(best_point(&pts, obj).cap_w, 100.0, "{obj:?}");
        }
    }

    #[test]
    fn regret_is_zero_at_the_optimum_and_positive_elsewhere() {
        let pts = hungry();
        let best = best_point(&pts, Objective::Edp);
        assert_eq!(regret(&pts, &best, Objective::Edp), 0.0);
        let worst = pts[3];
        assert!(regret(&pts, &worst, Objective::Edp) > 0.5);
    }

    #[test]
    fn edp_math() {
        let p = OperatingPoint { cap_w: 200.0, energy_j: 10.0, runtime_s: 3.0 };
        assert_eq!(p.edp(), 30.0);
        assert_eq!(p.ed2p(), 90.0);
    }

    #[test]
    fn pareto_front_drops_dominated_points() {
        let mut pts = hungry();
        // A dominated point: slower AND more energy than the 200 W point.
        pts.push(OperatingPoint { cap_w: 150.0, energy_j: 1.7e6, runtime_s: 1500.0 });
        let front = pareto_front(&pts);
        assert!(front
            .iter()
            .all(|p| !(p.cap_w == 150.0)), "dominated point survived: {front:?}");
        // The front is runtime-sorted and energy-decreasing.
        for w in front.windows(2) {
            assert!(w[0].runtime_s <= w[1].runtime_s);
            assert!(w[0].energy_j >= w[1].energy_j);
        }
        // The energy optimum and the runtime optimum both survive.
        assert!(front.iter().any(|p| p.cap_w == 100.0));
        assert!(front.iter().any(|p| p.cap_w == 400.0 || p.cap_w == 300.0));
    }

    #[test]
    #[should_panic(expected = "no operating points")]
    fn empty_points_panic() {
        let _ = best_point(&[], Objective::Edp);
    }
}
