//! Power-timeline phase segmentation.
//!
//! The paper reads phases off its timelines by eye (Fig. 1's
//! DGEMM/STREAM/idle/VASP segments, Fig. 3's CPU-only diagonalisation
//! stretch, Fig. 11's capped peaks). This module detects them
//! automatically: a greedy binary-split changepoint search that minimises
//! within-segment variance (CART-style), with a penalty per split — enough
//! to segment piecewise-steady power signals reliably.

/// One detected phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phase {
    /// Index of the first sample.
    pub start: usize,
    /// One past the last sample.
    pub end: usize,
    /// Mean power over the phase, watts.
    pub mean_w: f64,
}

impl Phase {
    /// Number of samples covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the phase covers nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }
}

/// Segmentation configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segmenter {
    /// Minimum samples per phase.
    pub min_len: usize,
    /// A split must reduce the cost by at least
    /// `penalty_w² × samples in the segment` to be accepted — i.e. the
    /// means must differ by roughly this many watts.
    pub penalty_w: f64,
    /// Upper bound on detected phases (guards pathological inputs).
    pub max_phases: usize,
}

impl Segmenter {
    /// Defaults suited to node-power series at the study's cadence.
    #[must_use]
    pub fn node_power() -> Self {
        Self {
            min_len: 5,
            penalty_w: 60.0,
            max_phases: 24,
        }
    }

    /// Segment `data` into phases of roughly constant power.
    ///
    /// # Panics
    /// If the configuration is degenerate (`min_len == 0`).
    #[must_use]
    pub fn segment(&self, data: &[f64]) -> Vec<Phase> {
        assert!(self.min_len > 0, "min_len must be positive");
        if data.is_empty() {
            return Vec::new();
        }
        // Prefix sums for O(1) segment cost.
        let mut sum = vec![0.0f64; data.len() + 1];
        let mut sum2 = vec![0.0f64; data.len() + 1];
        for (i, &x) in data.iter().enumerate() {
            sum[i + 1] = sum[i] + x;
            sum2[i + 1] = sum2[i] + x * x;
        }
        let seg_cost = |a: usize, b: usize| -> f64 {
            // Sum of squared deviations from the segment mean.
            let n = (b - a) as f64;
            let s = sum[b] - sum[a];
            (sum2[b] - sum2[a]) - s * s / n
        };
        let seg_mean = |a: usize, b: usize| (sum[b] - sum[a]) / (b - a) as f64;

        let mut bounds = vec![0, data.len()];
        loop {
            if bounds.len() > self.max_phases {
                break;
            }
            // Find the best single split across all current segments.
            let mut best: Option<(f64, usize)> = None;
            for w in bounds.windows(2) {
                let (a, b) = (w[0], w[1]);
                if b - a < 2 * self.min_len {
                    continue;
                }
                let base = seg_cost(a, b);
                for cut in (a + self.min_len)..(b - self.min_len + 1) {
                    let gain = base - seg_cost(a, cut) - seg_cost(cut, b);
                    let threshold = self.penalty_w * self.penalty_w * self.min_len as f64;
                    if gain > threshold && best.is_none_or(|(g, _)| gain > g) {
                        best = Some((gain, cut));
                    }
                }
            }
            match best {
                Some((_, cut)) => {
                    let pos = bounds.partition_point(|&b| b < cut);
                    bounds.insert(pos, cut);
                }
                None => break,
            }
        }

        bounds
            .windows(2)
            .map(|w| Phase {
                start: w[0],
                end: w[1],
                mean_w: seg_mean(w[0], w[1]),
            })
            .collect()
    }

    /// Convenience: the longest phase whose mean is below `threshold_w` —
    /// how we locate the ACFDT/RPA CPU-only stage in Fig. 3/11 analyses.
    #[must_use]
    pub fn longest_low_phase(&self, data: &[f64], threshold_w: f64) -> Option<Phase> {
        self.segment(data)
            .into_iter()
            .filter(|p| p.mean_w < threshold_w)
            .max_by_key(Phase::len)
    }
}

impl Default for Segmenter {
    fn default() -> Self {
        Self::node_power()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn steps(spec: &[(usize, f64)]) -> Vec<f64> {
        spec.iter()
            .flat_map(|&(n, w)| std::iter::repeat_n(w, n))
            .collect()
    }

    #[test]
    fn constant_signal_is_one_phase() {
        let data = steps(&[(100, 500.0)]);
        let phases = Segmenter::node_power().segment(&data);
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].len(), 100);
        assert!((phases[0].mean_w - 500.0).abs() < 1e-9);
    }

    #[test]
    fn three_clean_steps_are_found() {
        let data = steps(&[(50, 2000.0), (30, 450.0), (60, 1500.0)]);
        let phases = Segmenter::node_power().segment(&data);
        assert_eq!(phases.len(), 3, "{phases:?}");
        assert_eq!(phases[0].end, 50);
        assert_eq!(phases[1].end, 80);
        assert!((phases[1].mean_w - 450.0).abs() < 1e-9);
    }

    #[test]
    fn small_wiggles_do_not_split() {
        // ±30 W alternation is below the 60 W penalty.
        let data: Vec<f64> = (0..200)
            .map(|i| 1000.0 + if i % 2 == 0 { 30.0 } else { -30.0 })
            .collect();
        let phases = Segmenter::node_power().segment(&data);
        assert_eq!(phases.len(), 1, "{phases:?}");
    }

    #[test]
    fn prologue_shape_is_recovered() {
        // Fig. 1's structure: dgemm, stream, idle, vasp.
        let data = steps(&[(60, 1990.0), (30, 1540.0), (20, 450.0), (120, 1730.0)]);
        let phases = Segmenter::node_power().segment(&data);
        assert_eq!(phases.len(), 4, "{phases:?}");
        let means: Vec<f64> = phases.iter().map(|p| p.mean_w).collect();
        assert!((means[0] - 1990.0).abs() < 20.0);
        assert!((means[2] - 450.0).abs() < 20.0);
    }

    #[test]
    fn longest_low_phase_finds_the_diag_stage() {
        let data = steps(&[(40, 1800.0), (95, 660.0), (200, 1800.0)]);
        let p = Segmenter::node_power()
            .longest_low_phase(&data, 900.0)
            .unwrap();
        assert_eq!(p.start, 40);
        assert_eq!(p.end, 135);
    }

    #[test]
    fn respects_max_phases() {
        let spec: Vec<(usize, f64)> = (0..40).map(|i| (10, 300.0 * (i % 2 + 1) as f64)).collect();
        let data = steps(&spec);
        let seg = Segmenter {
            max_phases: 6,
            ..Segmenter::node_power()
        };
        assert!(seg.segment(&data).len() <= 6);
    }

    #[test]
    fn empty_input_is_empty_output() {
        assert!(Segmenter::node_power().segment(&[]).is_empty());
    }

    #[test]
    fn phases_tile_the_input() {
        let data = steps(&[(25, 100.0), (25, 900.0), (25, 100.0), (25, 900.0)]);
        let phases = Segmenter::node_power().segment(&data);
        assert_eq!(phases[0].start, 0);
        assert_eq!(phases.last().unwrap().end, data.len());
        for w in phases.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }
}
