//! Power-capping trade-off study for one workload (paper §V).
//!
//! ```text
//! cargo run --release --example power_capping_study [benchmark] [nodes]
//! ```
//!
//! Sweeps GPU power limits from 400 W down to 100 W in 50 W steps and
//! prints the performance / power / energy trade-off, plus the deepest cap
//! that keeps the slowdown within the paper's 10 % criterion.

use vasp_power_profiles::core::{benchmarks, protocol};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map_or("Si256_hse", String::as_str);
    let suite = benchmarks::suite();
    let Some(bench) = suite.iter().find(|b| b.name() == name) else {
        eprintln!("unknown benchmark '{name}'");
        std::process::exit(2);
    };
    let nodes: usize = args
        .get(1)
        .map(|s| s.parse().expect("nodes must be a positive integer"))
        .unwrap_or(bench.cap_study_nodes);

    let ctx = protocol::StudyContext::quick();
    println!("power-capping study: {name} on {nodes} node(s)\n");
    println!(
        "{:>6}  {:>10}  {:>9}  {:>12}  {:>11}  {:>10}",
        "cap W", "runtime s", "perf", "node mode W", "GPU mode W", "energy MJ"
    );

    let base = protocol::measure(bench, &protocol::RunConfig::nodes(nodes), &ctx);
    let mut best_cap = 400.0;
    for cap in [400.0, 350.0, 300.0, 250.0, 200.0, 150.0, 100.0] {
        let m = if cap >= 400.0 {
            base.clone()
        } else {
            protocol::measure(bench, &protocol::RunConfig::capped(nodes, cap), &ctx)
        };
        let perf = base.runtime_s / m.runtime_s;
        if perf >= 0.90 {
            best_cap = cap;
        }
        println!(
            "{:>6.0}  {:>10.0}  {:>9.2}  {:>12.0}  {:>11.0}  {:>10.2}",
            cap,
            m.runtime_s,
            perf,
            m.node_summary.high_mode_w,
            m.gpu_summary.high_mode_w,
            m.energy_j / 1e6
        );
    }

    println!(
        "\ndeepest cap within the paper's 10% criterion: {best_cap:.0} W \
         ({:.0}% of TDP)",
        best_cap / 4.0
    );
}
