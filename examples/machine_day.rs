//! A machine-scale what-if: one partition, a morning's worth of mixed VASP
//! and MILC jobs, with and without the paper's 50 %-TDP capping policy.
//!
//! ```text
//! cargo run --release --example machine_day [partition_nodes]
//! ```
//!
//! Every placed job is executed through the full simulator, so the system
//! power timeline is the *sum of real job traces* plus idle nodes — the
//! quantity NERSC's operations data (paper §I, ref [14]) actually shows.

use vasp_power_profiles::cluster::NetworkModel;
use vasp_power_profiles::core::{benchmarks, protocol};
use vasp_power_profiles::dft::{CostModel, ParallelLayout};
use vasp_power_profiles::fleet::{simulate, FleetSpec, JobRequest};
use vasp_power_profiles::lqcd::{MilcWorkload, SolverParams};
use vasp_power_profiles::sim::Rng;

fn main() {
    let partition: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("partition_nodes"))
        .unwrap_or(12);

    let net = NetworkModel::perlmutter();
    let cm = CostModel::calibrated();
    let ctx = protocol::StudyContext::quick();

    // Build a mixed queue: shortened versions of three VASP workloads plus
    // a MILC run, arriving over the first half hour.
    let mut rng = Rng::new(0xDA7);
    let mut requests = Vec::new();
    let mut id = 0u64;
    for round in 0..3 {
        for bench in [
            benchmarks::b_hr105_hse(),
            benchmarks::pdo2(),
            benchmarks::si128_acfdtr(),
        ] {
            let nodes = bench.cap_study_nodes;
            let plan = protocol::plan_for(&bench, nodes, &ctx);
            requests.push(JobRequest {
                id,
                name: bench.name().to_string(),
                plan,
                nodes,
                arrival_s: round as f64 * 600.0 + rng.uniform(0.0, 300.0),
                cap_w: None,
                est_node_power_w: 1400.0,
            });
            id += 1;
        }
        let milc = MilcWorkload {
            lattice: [32, 32, 32, 48],
            trajectories: 2,
            md_steps: 6,
            solver: SolverParams {
                cg_iters: 400,
                solves_per_step: 2,
            },
        };
        requests.push(JobRequest {
            id,
            name: "milc".into(),
            plan: milc.build_plan(&ParallelLayout::nodes(1), &net, &cm),
            nodes: 1,
            arrival_s: round as f64 * 600.0 + rng.uniform(0.0, 300.0),
            cap_w: None,
            est_node_power_w: 1200.0,
        });
        id += 1;
    }

    let spec = FleetSpec::new(partition);
    println!(
        "machine-day: {} jobs on a {partition}-node partition\n",
        requests.len()
    );
    println!(
        "{:<24} {:>11} {:>9} {:>9} {:>9} {:>7}",
        "policy", "makespan s", "peak kW", "mean kW", "wait s", "util"
    );

    for (label, cap) in [("uncapped (default)", None), ("50% TDP cap (paper)", Some(200.0))] {
        let reqs: Vec<JobRequest> = requests
            .iter()
            .cloned()
            .map(|mut r| {
                r.cap_w = cap;
                if cap.is_some() {
                    r.est_node_power_w = r.est_node_power_w.min(1100.0);
                }
                r
            })
            .collect();
        let out = simulate(&spec, &reqs, &net);
        let var = vasp_power_profiles::fleet::decompose(&out, spec.idle_node_w, spec.nodes, 2.0);
        println!(
            "{label:<24} {:>11.0} {:>9.1} {:>9.1} {:>9.0} {:>6.0}%   temporal var {:>3.0}%",
            out.makespan_s,
            out.peak_system_power_w() / 1000.0,
            out.mean_system_power_w() / 1000.0,
            out.mean_wait_s(),
            out.utilisation * 100.0,
            var.temporal_fraction * 100.0
        );
    }

    println!(
        "\ncapping shaves the partition's peak (headroom a scheduler can\n\
         hand to other partitions) at a small makespan cost — §VI's trade.\n\
         'temporal var' decomposes system-power variance: the share caused by\n\
         jobs' own power moving over time (the paper's §I context reports 65%\n\
         on Perlmutter)."
    );
}
