//! The §VI proposal, end to end: a power-aware batch scheduler that
//! classifies queued VASP jobs, caps the tolerant ones at 50 % TDP, and
//! reallocates the spared power to admit more jobs under a fixed system
//! power budget.
//!
//! ```text
//! cargo run --release --example scheduler_simulation [total_nodes] [budget_kW]
//! ```
//!
//! Cap-response curves are *measured* from the simulated suite (not
//! hand-written), then fed to the scheduler — exactly the workflow the
//! paper proposes for a production batch system.

use vasp_power_profiles::core::{benchmarks, protocol};
use vasp_power_profiles::dft::Xc;
use vasp_power_profiles::powercap::{
    BatchJob, CapResponse, Policy, Scheduler, WorkloadClass,
};

fn classify(xc: Xc) -> WorkloadClass {
    match xc {
        Xc::Hse | Xc::Rpa => WorkloadClass::PowerHungry,
        Xc::Lda | Xc::Gga => WorkloadClass::Moderate,
        Xc::VdwDf => WorkloadClass::Light,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let total_nodes: usize = args
        .first()
        .map(|s| s.parse().expect("total_nodes"))
        .unwrap_or(16);
    let budget_kw: f64 = args
        .get(1)
        .map(|s| s.parse().expect("budget_kW"))
        .unwrap_or(18.0);

    // Step 1: profile each benchmark's cap response on its study node count.
    let ctx = protocol::StudyContext::quick();
    println!("profiling cap responses (simulated measurements)...");
    let mut queue = Vec::new();
    let mut id = 0;
    for bench in benchmarks::suite() {
        let nodes = bench.cap_study_nodes;
        let base = protocol::measure(&bench, &protocol::RunConfig::nodes(nodes), &ctx);
        let mut points = Vec::new();
        for cap in [100.0, 200.0, 300.0, 400.0] {
            let m = if cap >= 400.0 {
                base.clone()
            } else {
                protocol::measure(&bench, &protocol::RunConfig::capped(nodes, cap), &ctx)
            };
            points.push((
                cap,
                base.runtime_s / m.runtime_s,
                m.energy_j / m.runtime_s / nodes as f64,
            ));
        }
        let response = CapResponse::new(points);
        println!(
            "  {:<14} {} node(s): perf@200W {:.2}, power@200W {:.0} W/node",
            bench.name(),
            nodes,
            response.perf_at(200.0),
            response.power_at(200.0)
        );
        // Each benchmark contributes three queued jobs.
        for _ in 0..3 {
            queue.push(BatchJob {
                id,
                name: bench.name().to_string(),
                class: classify(bench.deck.xc),
                nodes,
                base_runtime_s: base.runtime_s,
                response: response.clone(),
                arrival_s: 0.0,
            });
            id += 1;
        }
    }

    // Step 2: schedule under a tight power budget with each policy.
    let sched = Scheduler::new(total_nodes, budget_kw * 1000.0);
    println!(
        "\nscheduling {} jobs on {total_nodes} nodes under a {budget_kw:.0} kW budget:",
        queue.len()
    );
    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>10}",
        "policy", "makespan s", "peak kW", "mean kW", "jobs/h"
    );
    for (label, policy) in [
        ("uncapped (default)", Policy::Uncapped),
        ("fixed 200 W (50% TDP)", Policy::FixedCap(200.0)),
        ("class-aware (paper)", Policy::ClassAware),
    ] {
        let out = sched.run(&queue, policy);
        println!(
            "{:<22} {:>12.0} {:>12.1} {:>12.1} {:>10.1}",
            label,
            out.makespan_s,
            out.peak_power_w / 1000.0,
            out.mean_power_w / 1000.0,
            out.throughput_per_hour()
        );
    }
    println!(
        "\nthe paper's claim (§VI): capping tolerant workloads at 50% TDP frees\n\
         power to admit more jobs, raising throughput under a power-limited system."
    );
}
