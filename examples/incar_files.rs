//! Drive the simulator from real VASP-format input files.
//!
//! ```text
//! cargo run --release --example incar_files [dir-with-INCAR-POSCAR-KPOINTS]
//! ```
//!
//! With no argument, runs a built-in GaAsBi-64-style deck to show the
//! format. With a directory, reads `INCAR`, `POSCAR`, and (optionally)
//! `KPOINTS` from it, derives the computational parameters, and measures
//! the workload's power profile.

use vasp_power_profiles::core::protocol::StudyContext;
use vasp_power_profiles::dft::{
    build_plan, parse_incar, parse_kpoints, parse_poscar, ParallelLayout, SystemParams,
};

const DEMO_INCAR: &str = "\
SYSTEM = GaAsBi-64 demo
ALGO   = Fast
GGA    = PE
NELM   = 60
NBANDS = 192
KPAR   = 2
";

const DEMO_POSCAR: &str = "\
GaAsBi-64
1.0
17.55 0.0 0.0
0.0 17.55 0.0
0.0 0.0 17.55
Ga As Bi
32 31 1
Direct
";

const DEMO_KPOINTS: &str = "\
Automatic mesh
0
Gamma
4 4 4
";

fn read_or(dir: Option<&str>, file: &str, fallback: &str) -> String {
    match dir {
        Some(d) => std::fs::read_to_string(format!("{d}/{file}"))
            .unwrap_or_else(|e| panic!("cannot read {d}/{file}: {e}")),
        None => fallback.to_string(),
    }
}

fn main() {
    let dir = std::env::args().nth(1);
    let dir = dir.as_deref();
    if dir.is_none() {
        println!("(no directory given — using the built-in GaAsBi-64 deck)\n");
    }

    let incar_text = read_or(dir, "INCAR", DEMO_INCAR);
    let poscar_text = read_or(dir, "POSCAR", DEMO_POSCAR);

    let parsed = parse_incar(&incar_text).expect("INCAR parse failed");
    let mut deck = parsed.deck;
    if !parsed.ignored.is_empty() {
        println!(
            "tags parsed but not modelled: {}",
            parsed
                .ignored
                .iter()
                .map(|(t, _)| t.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    let cell = parse_poscar(&poscar_text).expect("POSCAR parse failed");

    // KPOINTS is optional (Γ-only default).
    let kpoints_text = match dir {
        Some(d) => std::fs::read_to_string(format!("{d}/KPOINTS")).ok(),
        None => Some(DEMO_KPOINTS.to_string()),
    };
    if let Some(text) = kpoints_text {
        deck.kpoints = parse_kpoints(&text).expect("KPOINTS parse failed");
    }
    deck.validate().expect("combined deck invalid");

    let params = SystemParams::derive(&cell, &deck);
    println!("structure  : {} ({} ions, {} electrons)", cell.name, params.n_ions, params.nelect);
    println!(
        "derived    : NBANDS {}, NPLWV {} (grid {}x{}x{}), {} k-points (KPAR {})",
        params.nbands,
        params.nplwv,
        params.fft_grid[0],
        params.fft_grid[1],
        params.fft_grid[2],
        params.nk,
        params.kpar
    );

    let ctx = StudyContext::quick();
    let plan = build_plan(&params, &ParallelLayout::nodes(1), &ctx.cost);
    let result = vasp_power_profiles::cluster::execute(
        &plan,
        &vasp_power_profiles::cluster::JobSpec::new(1),
        &ctx.network,
    );
    let series = ctx.sampler.sample(&result.node_traces[0].node);
    let summary = vasp_power_profiles::stats::PowerSummary::from_samples(series.values());
    println!("runtime    : {:.0} s on 1 node", result.runtime_s);
    println!("node power : {summary}");
}
