//! Dirty-telemetry demonstration: inject every fault class the collector
//! hardening covers, run the stream through the quarantine screen, and
//! compare the summaries of the clean, dirty, and screened series.
//!
//! ```text
//! cargo run --release --example dirty_telemetry [seed]
//! ```
//!
//! This is also the fault-injection smoke run wired into
//! `scripts/verify.sh`: it exits non-zero if the quarantine accounting
//! does not balance or the screened summary drifts from the clean one.

use vasp_power_profiles::cluster::{execute, JobSpec, NetworkModel};
use vasp_power_profiles::core::benchmarks;
use vasp_power_profiles::dft::{build_plan, CostModel, ParallelLayout};
use vasp_power_profiles::stats::PowerSummary;
use vasp_power_profiles::telemetry::{quarantine, FaultPlan, QualityConfig, Sampler};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("seed must be an integer"))
        .unwrap_or(0x00D1_57E0);

    // A real node-power timeline from the smallest benchmark.
    let bench = benchmarks::b_hr105_hse();
    let plan = build_plan(
        &bench.params(),
        &ParallelLayout::nodes(1),
        &CostModel::calibrated(),
    );
    let result = execute(&plan, &JobSpec::new(1), &NetworkModel::perlmutter());
    let interval_s = 0.25;
    let clean = Sampler::ideal(interval_s).sample(&result.node_traces[0].node);

    println!(
        "dirty-telemetry demo: {}, node 0, {:.0} s run, {} samples at {interval_s} s\n",
        bench.name(),
        result.runtime_s,
        clean.len()
    );

    // Inject the combined chaos plan: dropout bursts, stuck sensors,
    // NaN/spike glitches, counter resets, clock jitter + skew, reordering
    // and duplicate delivery — all seeded, all disjoint.
    let (raw, log) = FaultPlan::chaos(seed).inject(&clean);
    println!("injected ({} raw arrivals): {log:?}\n", raw.len());

    // Quarantine screen. Stuck detection stays ON here: the injector's
    // bitwise-equal held runs are exactly what it exists to catch.
    let cfg = QualityConfig::new(interval_s);
    let screened = quarantine(&raw, &cfg);
    let q = screened.quality;
    println!("quality report:\n{q}\n");

    assert_eq!(
        q.n_raw,
        q.n_kept + q.removed(),
        "quarantine accounting must balance"
    );
    assert_eq!(q.duplicates_resolved, log.duplicates);
    assert_eq!(q.order_violations, log.swaps);

    // Summaries: the screen should recover the clean distribution even
    // though the dirty stream carries NaNs and kW-scale spikes.
    let clean_sum = PowerSummary::from_samples(clean.values());
    let dirty_vals: Vec<f64> = raw.points().iter().map(|p| p.1).collect();
    let dirty_sum = PowerSummary::from_screened(&dirty_vals).expect("some finite samples");
    let screened_sum = PowerSummary::from_samples(screened.series.values());

    println!("clean    : {clean_sum}");
    println!(
        "dirty    : {} ({} non-finite rejected just to print this)",
        dirty_sum.summary, dirty_sum.n_rejected
    );
    println!("screened : {screened_sum}");

    let mode_err = (screened_sum.high_mode_w - clean_sum.high_mode_w).abs();
    assert!(
        mode_err < 0.05 * clean_sum.high_mode_w,
        "screened high power mode drifted {mode_err:.1} W from clean"
    );
    assert!(
        screened_sum.max_w < 50_000.0,
        "a spike survived the screen"
    );
    println!(
        "\nhigh-power-mode drift after screening: {mode_err:.1} W (coverage {:.2})",
        q.coverage
    );
    println!("dirty_telemetry: OK");
}
