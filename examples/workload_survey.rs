//! Survey the full seven-benchmark suite across node counts — a compact
//! version of the paper's Figs. 4 + 5 (parallel efficiency and per-node
//! power mode vs concurrency).
//!
//! ```text
//! cargo run --release --example workload_survey [max_nodes]
//! ```

use vasp_power_profiles::core::{benchmarks, protocol};
use vasp_power_profiles::stats::parallel_efficiency;

fn main() {
    let max_nodes: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("max_nodes must be a positive integer"))
        .unwrap_or(4);
    let mut node_counts = vec![1usize];
    while node_counts.last().unwrap() * 2 <= max_nodes {
        node_counts.push(node_counts.last().unwrap() * 2);
    }

    let ctx = protocol::StudyContext::quick();
    println!("workload survey over {node_counts:?} nodes\n");
    println!(
        "{:<14} {:>6}  {:>10}  {:>6}  {:>12}  {:>10}",
        "benchmark", "nodes", "runtime s", "PE", "node mode W", "energy MJ"
    );

    for bench in benchmarks::suite() {
        let mut t1 = None;
        for &n in &node_counts {
            let m = protocol::measure(&bench, &protocol::RunConfig::nodes(n), &ctx);
            let t_ref = *t1.get_or_insert(m.runtime_s);
            let pe = parallel_efficiency(t_ref, n as f64, m.runtime_s);
            println!(
                "{:<14} {:>6}  {:>10.0}  {:>6.2}  {:>12.0}  {:>10.2}",
                m.name,
                n,
                m.runtime_s,
                pe,
                m.node_summary.high_mode_w,
                m.energy_j / 1e6
            );
        }
        println!();
    }

    println!(
        "the paper's headline: power varies with *workload* (766-1810 W/node)\n\
         far more than with *concurrency* (flat while PE ≥ 70%)."
    );
}
