//! §VI-B's deployment step: apply the identical power-profiling pipeline to
//! NERSC's second-largest application, MILC (lattice QCD), and compare its
//! cap response with VASP's.
//!
//! ```text
//! cargo run --release --example milc_comparison
//! ```

use vasp_power_profiles::cluster::{execute, JobSpec, NetworkModel};
use vasp_power_profiles::core::{benchmarks, protocol};
use vasp_power_profiles::dft::{CostModel, ParallelLayout};
use vasp_power_profiles::lqcd::{MilcWorkload, SolverParams};
use vasp_power_profiles::stats::high_power_mode;
use vasp_power_profiles::telemetry::Sampler;

fn main() {
    let net = NetworkModel::perlmutter();
    let cm = CostModel::calibrated();
    let milc = MilcWorkload {
        lattice: [48, 48, 48, 64],
        trajectories: 3,
        md_steps: 10,
        solver: SolverParams {
            cg_iters: 800,
            solves_per_step: 2,
        },
    };
    let layout = ParallelLayout::nodes(1);
    let plan = milc.build_plan(&layout, &net, &cm);

    println!(
        "MILC {}³×{} lattice, {} trajectories, 1 node\n",
        milc.lattice[0], milc.lattice[3], milc.trajectories
    );
    println!("{:>6}  {:>10}  {:>6}  {:>12}", "cap W", "runtime s", "perf", "node mode W");

    let mut milc_rows = Vec::new();
    let mut base_runtime = 0.0;
    for cap in [400.0, 300.0, 200.0, 100.0] {
        let mut spec = JobSpec::new(1);
        if cap < 400.0 {
            spec.gpu_power_cap_w = Some(cap);
        }
        let res = execute(&plan, &spec, &net);
        if cap >= 400.0 {
            base_runtime = res.runtime_s;
        }
        let series = Sampler::ideal(1.0).sample(&res.node_traces[0].node);
        let mode = high_power_mode(series.values()).x;
        let perf = base_runtime / res.runtime_s;
        println!("{cap:>6.0}  {:>10.0}  {perf:>6.2}  {mode:>12.0}", res.runtime_s);
        milc_rows.push((cap, perf));
    }

    // VASP's hungriest workload, same caps, for contrast.
    println!("\nSi256_hse (VASP's power-hungriest), same caps:\n");
    println!("{:>6}  {:>6}", "cap W", "perf");
    let ctx = protocol::StudyContext::quick();
    let bench = benchmarks::si256_hse();
    let base = protocol::measure(&bench, &protocol::RunConfig::nodes(1), &ctx);
    for cap in [400.0, 300.0, 200.0, 100.0] {
        let perf = if cap >= 400.0 {
            1.0
        } else {
            let m = protocol::measure(&bench, &protocol::RunConfig::capped(1, cap), &ctx);
            base.runtime_s / m.runtime_s
        };
        println!("{cap:>6.0}  {perf:>6.2}");
    }

    println!(
        "\nfinding (matches Acun et al., the paper's §VI-B follow-up): MILC's\n\
         bandwidth-bound solver tolerates even the 100 W floor, while VASP's\n\
         tensor-core-heavy HSE collapses there — per-application cap policies\n\
         are exactly what a power-aware scheduler should exploit."
    );
}
