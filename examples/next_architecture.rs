//! §I's transition question: application power strategies must move to new
//! architectures quickly — how does the 50 %-TDP rule transfer?
//!
//! ```text
//! cargo run --release --example next_architecture
//! ```
//!
//! Compares the cap response of representative kernels on the study's
//! A100-40GB against an H100-like 700 W device (same calibrated throttle
//! physics, scaled envelope) and reports where the <10 %-loss cap sits on
//! each as a fraction of TDP.

use vasp_power_profiles::gpu::{A100Spec, Gpu, GpuVariability, Kernel, KernelKind};
use vasp_power_profiles::gpu::calib::ThrottleCalib;

fn device(spec: A100Spec) -> Gpu {
    Gpu::new(spec, ThrottleCalib::calibrated(), GpuVariability::nominal())
}

fn deepest_cap_within(gpu_spec: A100Spec, kernel: &Kernel, max_loss: f64) -> f64 {
    let mut best = gpu_spec.max_cap_w;
    let mut cap = gpu_spec.max_cap_w;
    while cap >= gpu_spec.min_cap_w {
        let mut gpu = device(gpu_spec);
        gpu.set_power_limit(cap);
        if gpu.execute(kernel).perf >= 1.0 - max_loss {
            best = cap;
        }
        cap -= 10.0;
    }
    best
}

fn main() {
    let kernels = [
        ("tensor GEMM (HSE-like)", Kernel::new(KernelKind::TensorGemm, 2.0e7, 1.0)),
        ("batched FFT (DFT-like)", Kernel::new(KernelKind::Fft3d, 4.0e6, 1.0)),
        ("bandwidth-bound (MILC-like)", Kernel::new(KernelKind::MemBound, 4.0e6, 1.0)),
    ];

    for (label, spec) in [
        ("A100-40GB (the study)", A100Spec::perlmutter()),
        ("A100-80GB", A100Spec::a100_80gb()),
        ("H100-like what-if", A100Spec::h100_like()),
    ] {
        println!("{label}: TDP {:.0} W, cap range [{:.0}, {:.0}] W", spec.tdp_w, spec.min_cap_w, spec.max_cap_w);
        println!(
            "  {:<28} {:>10} {:>14} {:>12}",
            "kernel", "uncapped W", "≤10%-loss cap", "cap / TDP"
        );
        for (name, k) in &kernels {
            let gpu = device(spec);
            let p0 = gpu.uncapped_power(k);
            let cap = deepest_cap_within(spec, k, 0.10);
            println!(
                "  {name:<28} {p0:>10.0} {cap:>12.0} W {:>11.0}%",
                cap / spec.tdp_w * 100.0
            );
        }
        println!();
    }

    println!(
        "reading: the 50%-of-TDP rule is an *architecture-relative* policy —\n\
         on the hotter device the compute-bound kernels tolerate a similar\n\
         TDP fraction, while bandwidth-bound work caps even deeper. A new\n\
         machine needs recalibrated absolute caps but the classification\n\
         (hungry vs tolerant workloads) transfers."
    );
}
