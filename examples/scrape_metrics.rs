//! Minimal std-only scraper for the observability endpoint (DESIGN.md
//! §3.7): HTTP/1.1 GETs over one `std::net::TcpStream`, bodies to stdout.
//!
//! ```text
//! cargo run --example scrape_metrics -- http://127.0.0.1:PORT/metrics
//! cargo run --example scrape_metrics -- http://127.0.0.1:PORT/metrics /healthz /jobs
//! ```
//!
//! Extra arguments are further paths fetched **over the same keep-alive
//! connection** — the server frames every response with `Content-Length`,
//! so the scraper reads exactly one body per request and reuses the
//! socket (the last request says `Connection: close`). Exits 1 on
//! connection errors or any non-2xx response — the shape
//! `scripts/verify.sh` needs to poll a `vpp serve` instance without curl.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Read one `Content-Length`-framed response: `(status, body)`.
fn read_response(stream: &mut TcpStream) -> Result<(u16, String), String> {
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 2048];
    let head_end = loop {
        if let Some(i) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break i + 4;
        }
        let n = stream
            .read(&mut chunk)
            .map_err(|e| format!("read response head: {e}"))?;
        if n == 0 {
            return Err("connection closed before a full response head".to_string());
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .ok_or("malformed status line")?
        .parse()
        .map_err(|_| "non-numeric status code".to_string())?;
    let len: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .ok_or("response carries no Content-Length")?
        .trim()
        .parse()
        .map_err(|_| "non-numeric Content-Length".to_string())?;
    let mut body = buf[head_end..].to_vec();
    while body.len() < len {
        let n = stream
            .read(&mut chunk)
            .map_err(|e| format!("read response body: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-body".to_string());
        }
        body.extend_from_slice(&chunk[..n]);
    }
    Ok((status, String::from_utf8_lossy(&body[..len]).to_string()))
}

/// Fetch every path over one keep-alive connection; the final request
/// asks the server to close.
fn fetch_all(host: &str, paths: &[String]) -> Result<Vec<(u16, String)>, String> {
    let mut stream = TcpStream::connect(host).map_err(|e| format!("connect {host}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| format!("set timeout: {e}"))?;
    let mut out = Vec::with_capacity(paths.len());
    for (i, path) in paths.iter().enumerate() {
        let connection = if i + 1 == paths.len() { "close" } else { "keep-alive" };
        write!(
            stream,
            "GET {path} HTTP/1.1\r\nHost: {host}\r\nConnection: {connection}\r\n\r\n"
        )
        .map_err(|e| format!("send request for {path}: {e}"))?;
        out.push(read_response(&mut stream).map_err(|e| format!("{path}: {e}"))?);
    }
    Ok(out)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(url) = args.first() else {
        eprintln!("usage: scrape_metrics http://HOST:PORT/PATH [PATH...]");
        std::process::exit(2);
    };
    let Some(rest) = url.strip_prefix("http://") else {
        eprintln!("error: only http:// URLs are supported, got '{url}'");
        std::process::exit(1);
    };
    let (host, first_path) = match rest.split_once('/') {
        Some((host, path)) => (host.to_string(), format!("/{path}")),
        None => (rest.to_string(), "/".to_string()),
    };
    let mut paths = vec![first_path];
    paths.extend(args[1..].iter().cloned());
    match fetch_all(&host, &paths) {
        Ok(responses) => {
            let mut failed = false;
            for (path, (status, body)) in paths.iter().zip(&responses) {
                if (200..300).contains(status) {
                    print!("{body}");
                } else {
                    eprintln!("{path}: HTTP {status}");
                    eprint!("{body}");
                    failed = true;
                }
            }
            if failed {
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
