//! Minimal std-only scraper for the observability endpoint (DESIGN.md
//! §3.7): one HTTP/1.1 GET over `std::net::TcpStream`, body to stdout.
//!
//! ```text
//! cargo run --example scrape_metrics -- http://127.0.0.1:PORT/metrics
//! ```
//!
//! Exits 1 on connection errors or non-2xx responses — the shape
//! `scripts/verify.sh` needs to poll a `vpp serve` instance without curl.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn fetch(url: &str) -> Result<(u16, String), String> {
    let rest = url
        .strip_prefix("http://")
        .ok_or_else(|| format!("only http:// URLs are supported, got '{url}'"))?;
    let (host, path) = match rest.split_once('/') {
        Some((host, path)) => (host, format!("/{path}")),
        None => (rest, "/".to_string()),
    };
    let mut stream =
        TcpStream::connect(host).map_err(|e| format!("connect {host}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| format!("set timeout: {e}"))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {host}\r\nConnection: close\r\n\r\n"
    )
    .map_err(|e| format!("send request: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("read response: {e}"))?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or("malformed response: no header terminator")?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .ok_or("malformed status line")?
        .parse()
        .map_err(|_| "non-numeric status code".to_string())?;
    Ok((status, body.to_string()))
}

fn main() {
    let Some(url) = std::env::args().nth(1) else {
        eprintln!("usage: scrape_metrics http://HOST:PORT/PATH");
        std::process::exit(2);
    };
    match fetch(&url) {
        Ok((status, body)) if (200..300).contains(&status) => print!("{body}"),
        Ok((status, body)) => {
            eprintln!("HTTP {status}");
            eprint!("{body}");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
