//! Minimal std-only scraper for the observability endpoint (DESIGN.md
//! §3.7): HTTP/1.1 GETs over one `std::net::TcpStream`, bodies to stdout.
//!
//! ```text
//! cargo run --example scrape_metrics -- http://127.0.0.1:PORT/metrics
//! cargo run --example scrape_metrics -- http://127.0.0.1:PORT/metrics /healthz /jobs
//! cargo run --example scrape_metrics -- http://127.0.0.1:PORT/metrics \
//!     'POST /jobs {"workload": "B.hR105_hse"}' '/logs?level=warn'
//! ```
//!
//! Extra arguments are further requests sent **over the same keep-alive
//! connection** — the server frames every response with `Content-Length`,
//! so the scraper reads exactly one body per request and reuses the
//! socket (the last request says `Connection: close`). An argument of
//! the form `POST <path> <body>` (one shell word) submits a POST instead
//! of a GET; its outcome is reported as a `POST <path> -> HTTP <status>`
//! line plus the response body, and a non-2xx status is **not** an error
//! — backpressure answers (429) are an outcome the caller greps for.
//! Exits 1 on connection errors or any non-2xx GET response — the shape
//! `scripts/verify.sh` needs to poll a `vpp serve` instance without curl.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Read one `Content-Length`-framed response: `(status, body)`.
///
/// `carry` holds bytes already read past the previous response's body —
/// the next response's prefix when the server streams pipelined answers
/// back-to-back — and is refilled with this response's surplus.
fn read_response(stream: &mut TcpStream, carry: &mut Vec<u8>) -> Result<(u16, String), String> {
    let mut buf: Vec<u8> = std::mem::take(carry);
    let mut chunk = [0u8; 2048];
    let head_end = loop {
        if let Some(i) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break i + 4;
        }
        let n = stream
            .read(&mut chunk)
            .map_err(|e| format!("read response head: {e}"))?;
        if n == 0 {
            return Err("connection closed before a full response head".to_string());
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .ok_or("malformed status line")?
        .parse()
        .map_err(|_| "non-numeric status code".to_string())?;
    let len: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .ok_or("response carries no Content-Length")?
        .trim()
        .parse()
        .map_err(|_| "non-numeric Content-Length".to_string())?;
    let mut body = buf[head_end..].to_vec();
    while body.len() < len {
        let n = stream
            .read(&mut chunk)
            .map_err(|e| format!("read response body: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-body".to_string());
        }
        body.extend_from_slice(&chunk[..n]);
    }
    *carry = body.split_off(len);
    Ok((status, String::from_utf8_lossy(&body).to_string()))
}

/// One request in the keep-alive sequence.
enum Req {
    Get(String),
    Post { path: String, body: String },
}

impl Req {
    /// `POST <path> <body>` (one argument) is a POST; anything else is a
    /// GET of that path.
    fn parse(arg: &str) -> Result<Req, String> {
        let Some(rest) = arg.strip_prefix("POST ") else {
            return Ok(Req::Get(arg.to_string()));
        };
        let (path, body) = rest
            .split_once(' ')
            .ok_or_else(|| format!("malformed POST argument (want 'POST <path> <body>'): {arg}"))?;
        Ok(Req::Post {
            path: path.to_string(),
            body: body.to_string(),
        })
    }

    fn path(&self) -> &str {
        match self {
            Req::Get(p) | Req::Post { path: p, .. } => p,
        }
    }
}

/// Send every request over one keep-alive connection; the final request
/// asks the server to close.
///
/// Requests are **pipelined**: all of them are written up front (they
/// are tiny and fit the socket buffer), then the responses are read in
/// order. Besides exercising the server's carry-buffer pipelining, this
/// makes back-to-back POSTs land microseconds apart server-side — the
/// shape the backpressure smoke needs to fill a one-deep queue before
/// the first job can finish.
fn fetch_all(host: &str, reqs: &[Req]) -> Result<Vec<(u16, String)>, String> {
    let mut stream = TcpStream::connect(host).map_err(|e| format!("connect {host}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| format!("set timeout: {e}"))?;
    for (i, req) in reqs.iter().enumerate() {
        let connection = if i + 1 == reqs.len() { "close" } else { "keep-alive" };
        match req {
            Req::Get(path) => write!(
                stream,
                "GET {path} HTTP/1.1\r\nHost: {host}\r\nConnection: {connection}\r\n\r\n"
            ),
            Req::Post { path, body } => write!(
                stream,
                "POST {path} HTTP/1.1\r\nHost: {host}\r\nContent-Length: {}\r\n\
                 Connection: {connection}\r\n\r\n{body}",
                body.len()
            ),
        }
        .map_err(|e| format!("send request for {}: {e}", req.path()))?;
    }
    let mut out = Vec::with_capacity(reqs.len());
    let mut carry = Vec::new();
    for req in reqs {
        out.push(read_response(&mut stream, &mut carry).map_err(|e| format!("{}: {e}", req.path()))?);
    }
    Ok(out)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(url) = args.first() else {
        eprintln!("usage: scrape_metrics http://HOST:PORT/PATH ['PATH' | 'POST PATH BODY']...");
        std::process::exit(2);
    };
    let Some(rest) = url.strip_prefix("http://") else {
        eprintln!("error: only http:// URLs are supported, got '{url}'");
        std::process::exit(1);
    };
    let (host, first_path) = match rest.split_once('/') {
        Some((host, path)) => (host.to_string(), format!("/{path}")),
        None => (rest.to_string(), "/".to_string()),
    };
    let mut reqs = vec![Req::Get(first_path)];
    for arg in &args[1..] {
        match Req::parse(arg) {
            Ok(r) => reqs.push(r),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }
    match fetch_all(&host, &reqs) {
        Ok(responses) => {
            let mut failed = false;
            for (req, (status, body)) in reqs.iter().zip(&responses) {
                match req {
                    Req::Get(path) => {
                        if (200..300).contains(status) {
                            print!("{body}");
                        } else {
                            eprintln!("{path}: HTTP {status}");
                            eprint!("{body}");
                            failed = true;
                        }
                    }
                    // POST outcomes are data, not pass/fail: a 429 from a
                    // full queue is exactly what the backpressure smoke
                    // wants to observe.
                    Req::Post { path, .. } => {
                        println!("POST {path} -> HTTP {status}");
                        if !body.is_empty() {
                            println!("{body}");
                        }
                    }
                }
            }
            if failed {
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
