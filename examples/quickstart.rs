//! Quickstart: run one benchmark on one node and print its power profile.
//!
//! ```text
//! cargo run --release --example quickstart [benchmark-name] [nodes]
//! ```
//!
//! This walks the whole pipeline: Table I benchmark → SCF plan → simulated
//! job on a modelled Perlmutter node → LDMS-rate sampling → the paper's KDE
//! power summary.

use vasp_power_profiles::core::{benchmarks, protocol};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map_or("Si256_hse", String::as_str);
    let nodes: usize = args
        .get(1)
        .map(|s| s.parse().expect("nodes must be a positive integer"))
        .unwrap_or(1);

    let suite = benchmarks::suite();
    let Some(bench) = suite.iter().find(|b| b.name() == name) else {
        eprintln!("unknown benchmark '{name}'; available:");
        for b in &suite {
            eprintln!("  {}", b.name());
        }
        std::process::exit(2);
    };

    let p = bench.params();
    println!("benchmark      : {}", bench.name());
    println!(
        "system         : {} ions, {} electrons, NBANDS {}, NPLWV {}, {} k-points",
        p.n_ions, p.nelect, p.nbands, p.nplwv, p.nk
    );
    println!("nodes          : {nodes} (4× A100 each)");

    let ctx = protocol::StudyContext::paper();
    let m = protocol::measure(bench, &protocol::RunConfig::nodes(nodes), &ctx);

    println!("runtime        : {:.0} s (best of {} repeats)", m.runtime_s, ctx.repeats);
    println!("energy         : {:.2} MJ", m.energy_j / 1e6);
    println!("node power     : {}", m.node_summary);
    println!("GPU-0 power    : {}", m.gpu_summary);
    println!(
        "effective rate : {:.1} s between samples (nominal {:.0} s with drops)",
        m.node_series.mean_interval_s().unwrap_or(f64::NAN),
        ctx.sampler.interval_s
    );
}
