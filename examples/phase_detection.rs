//! Automatic phase segmentation of a power timeline.
//!
//! ```text
//! cargo run --release --example phase_detection [benchmark]
//! ```
//!
//! Runs a benchmark, samples its node power, and segments the timeline into
//! phases of roughly constant power — recovering by algorithm what the
//! paper reads off its figures by eye (e.g. Si128_acfdtr's CPU-only exact
//! diagonalisation stretch in Fig. 3).

use vasp_power_profiles::core::{benchmarks, protocol};
use vasp_power_profiles::stats::Segmenter;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "Si128_acfdtr".into());
    let suite = benchmarks::suite();
    let Some(bench) = suite.iter().find(|b| b.name() == name) else {
        eprintln!("unknown benchmark '{name}'");
        std::process::exit(2);
    };

    let ctx = protocol::StudyContext::quick();
    let m = protocol::measure(bench, &protocol::RunConfig::nodes(1), &ctx);
    let times = m.node_series.times();
    let values = m.node_series.values();
    let interval = m.node_series.mean_interval_s().unwrap_or(1.0);

    println!(
        "{name}: {:.0} s runtime, {} samples at ~{interval:.1} s\n",
        m.runtime_s,
        values.len()
    );

    let seg = Segmenter::node_power();
    let phases = seg.segment(values);
    println!(
        "{:>8}  {:>8}  {:>10}  {:>10}",
        "from s", "to s", "duration s", "mean W"
    );
    for p in &phases {
        let t0 = times[p.start];
        let t1 = times[p.end - 1];
        println!("{t0:>8.0}  {t1:>8.0}  {:>10.0}  {:>10.0}", t1 - t0, p.mean_w);
    }

    if let Some(low) = seg.longest_low_phase(values, 900.0) {
        println!(
            "\nlongest low-power phase: {:.0} s at {:.0} W \
             (the ACFDT/RPA CPU-only diagonalisation, for Si128_acfdtr)",
            (low.len() as f64) * interval,
            low.mean_w
        );
    } else {
        println!("\nno low-power phase below 900 W — GPU-resident throughout");
    }
}
