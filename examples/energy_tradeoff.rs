//! Pick the best power cap per workload under energy / EDP / ED²P
//! objectives (the §VII metric family) from measured operating points.
//!
//! ```text
//! cargo run --release --example energy_tradeoff [benchmark]
//! ```

use vasp_power_profiles::core::{benchmarks, protocol};
use vasp_power_profiles::stats::energy_metrics::{best_point, Objective, OperatingPoint};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "Si256_hse".into());
    let suite = benchmarks::suite();
    let Some(bench) = suite.iter().find(|b| b.name() == name) else {
        eprintln!("unknown benchmark '{name}'");
        std::process::exit(2);
    };
    let nodes = bench.cap_study_nodes;
    let ctx = protocol::StudyContext::quick();

    println!("energy/performance trade-off: {name} on {nodes} node(s)\n");
    println!(
        "{:>6}  {:>10}  {:>10}  {:>12}  {:>14}",
        "cap W", "runtime s", "energy MJ", "EDP GJ·s", "ED²P TJ·s²"
    );
    let mut points = Vec::new();
    for cap in [400.0, 300.0, 250.0, 200.0, 150.0, 100.0] {
        let m = if cap >= 400.0 {
            protocol::measure(bench, &protocol::RunConfig::nodes(nodes), &ctx)
        } else {
            protocol::measure(bench, &protocol::RunConfig::capped(nodes, cap), &ctx)
        };
        let p = OperatingPoint {
            cap_w: cap,
            energy_j: m.energy_j,
            runtime_s: m.runtime_s,
        };
        println!(
            "{:>6.0}  {:>10.0}  {:>10.2}  {:>12.2}  {:>14.2}",
            cap,
            p.runtime_s,
            p.energy_j / 1e6,
            p.edp() / 1e9,
            p.ed2p() / 1e12
        );
        points.push(p);
    }

    println!();
    for obj in [Objective::Energy, Objective::Edp, Objective::Ed2p] {
        let best = best_point(&points, obj);
        println!("best cap under {obj:?}: {:.0} W", best.cap_w);
    }
    println!(
        "\nreading: deep caps always save energy; whether they *pay* depends on\n\
         how much delay the objective tolerates — and on the workload's cap\n\
         sensitivity (compare Si256_hse with PdO2)."
    );
}
