//! The Fig. 2 methodology study as a standalone tool: how does the choice
//! of power-sampling rate affect the measured distribution?
//!
//! ```text
//! cargo run --release --example sampling_rates [benchmark]
//! ```
//!
//! Captures the per-GPU power at 0.1 s, down-samples to coarser rates, and
//! prints the distribution statistics at each rate. Finding (as in the
//! paper): any rate up to 10 s captures the high power mode; resolving the
//! timeline's structure needs ≤5 s.

use vasp_power_profiles::cluster::{execute, JobSpec, NetworkModel};
use vasp_power_profiles::core::benchmarks;
use vasp_power_profiles::dft::{build_plan, CostModel, ParallelLayout};
use vasp_power_profiles::stats::{fwhm, high_power_mode};
use vasp_power_profiles::telemetry::Sampler;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "Si256_hse".into());
    let suite = benchmarks::suite();
    let Some(bench) = suite.iter().find(|b| b.name() == name) else {
        eprintln!("unknown benchmark '{name}'");
        std::process::exit(2);
    };

    let plan = build_plan(
        &bench.params(),
        &ParallelLayout::nodes(1),
        &CostModel::calibrated(),
    );
    let result = execute(&plan, &JobSpec::new(1), &NetworkModel::perlmutter());
    let gpu = &result.node_traces[0].gpus[0];
    let base = Sampler::high_rate().sample(gpu);

    println!("sampling-rate study: {name}, GPU 0, {:.0} s run\n", result.runtime_s);
    println!(
        "{:>7}  {:>8}  {:>6}  {:>8}  {:>6}  {:>11}  {:>7}",
        "rate s", "samples", "max W", "median W", "min W", "high mode W", "FWHM W"
    );
    for rate in [0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0] {
        let series = base.downsample((rate / 0.1_f64).round() as usize);
        let vals = series.values();
        let mode = high_power_mode(vals);
        println!(
            "{:>7.1}  {:>8}  {:>6.0}  {:>8.0}  {:>6.0}  {:>11.0}  {:>7.1}",
            rate,
            series.len(),
            series.max().unwrap_or(0.0),
            vasp_power_profiles::stats::describe::median(vals),
            series.min().unwrap_or(0.0),
            mode.x,
            fwhm(vals, mode),
        );
    }
}
